package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunBenchJSON drives the extracted round function exactly as
// `hhbench -json` does and parses the emitted JSON result object back,
// pinning the output contract scripted consumers depend on.
func TestRunBenchJSON(t *testing.T) {
	// n large enough that the top planted fraction (25%) clears the
	// configuration's sqrt(n·M)-shaped recovery floor, keeping the recall
	// assertion non-vacuous.
	res, err := runBench(benchConfig{
		N: 16000, Eps: 4, ItemBytes: 4, Protocol: "pes",
		Workload: "planted", Seed: 1, Y: 64, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Protocol   string  `json:"protocol"`
		N          int     `json:"n"`
		Eps        float64 `json:"eps"`
		Workload   string  `json:"workload"`
		Threshold  float64 `json:"threshold"`
		Promised   int     `json:"promised"`
		Recalled   int     `json:"recalled"`
		OutputSize int     `json:"output_size"`
		MaxError   float64 `json:"max_recalled_error"`
		WallMS     int64   `json:"wall_ms"`
		Top        []struct {
			Item string  `json:"item"`
			Est  float64 `json:"estimate"`
			True int     `json:"true"`
		} `json:"top"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if parsed.Protocol != "pes" || parsed.N != 16000 || parsed.Workload != "planted" {
		t.Fatalf("JSON round-trip mangled the config: %+v", parsed)
	}
	if parsed.Threshold <= 0 {
		t.Fatalf("threshold %v not positive", parsed.Threshold)
	}
	if parsed.Promised < 1 || parsed.Recalled < parsed.Promised {
		t.Fatalf("promised %d items, recalled %d — the seeded round regressed", parsed.Promised, parsed.Recalled)
	}
	if parsed.OutputSize != len(parsed.Top) && len(parsed.Top) != 5 {
		t.Fatalf("top rows %d inconsistent with output size %d", len(parsed.Top), parsed.OutputSize)
	}
	for _, row := range parsed.Top {
		if row.Item == "" {
			t.Fatal("top row with empty item")
		}
	}
}

// TestRunBenchBaselinesAndErrors smoke-tests the non-default protocol and
// workload switches plus the error paths so every main-package branch runs
// under `go test`.
func TestRunBenchBaselinesAndErrors(t *testing.T) {
	if _, err := runBench(benchConfig{
		N: 4000, Eps: 4, ItemBytes: 2, Protocol: "bitstogram",
		Workload: "zipf", ZipfS: 1.1, Support: 200, Seed: 1,
	}); err != nil {
		t.Fatalf("bitstogram/zipf round: %v", err)
	}
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "nope", Workload: "planted", Seed: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "pes", Workload: "nope", Seed: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "pes", Workload: "planted", Transport: "nope", Seed: 1}); err == nil {
		t.Fatal("unknown transport accepted")
	}
	// Enumerable-domain protocols reject the planted workload's random
	// filler instead of producing out-of-domain reports.
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "bassilysmith", Workload: "planted", Seed: 1}); err == nil {
		t.Fatal("bassilysmith/planted accepted")
	}
}

// TestRunBenchTCPTransport pins the -transport tcp path: the identical
// round over a real socket produces the identical recall contract.
func TestRunBenchTCPTransport(t *testing.T) {
	res, err := runBench(benchConfig{
		N: 8000, Eps: 4, ItemBytes: 2, Protocol: "smalldomain", Transport: "tcp",
		Workload: "zipf", ZipfS: 1.4, Support: 100, Seed: 1, Fleets: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Transport != "tcp" {
		t.Fatalf("transport = %q", res.Transport)
	}
	if res.Promised < 1 || res.Recalled < res.Promised {
		t.Fatalf("promised %d, recalled %d over TCP", res.Promised, res.Recalled)
	}
	if res.BytesPerRep != 5 {
		t.Fatalf("smalldomain bytes/report = %d, want 5", res.BytesPerRep)
	}
	if res.Wire != "batch" {
		t.Fatalf("default tcp wire = %q, want batch", res.Wire)
	}
	// The -wire stream legacy framing carries the identical round to the
	// identical outcome.
	stream, err := runBench(benchConfig{
		N: 8000, Eps: 4, ItemBytes: 2, Protocol: "smalldomain", Transport: "tcp",
		Workload: "zipf", ZipfS: 1.4, Support: 100, Seed: 1, Fleets: 3, Wire: "stream",
	})
	if err != nil {
		t.Fatal(err)
	}
	if stream.Wire != "stream" {
		t.Fatalf("wire = %q", stream.Wire)
	}
	if stream.Recalled != res.Recalled || stream.OutputSize != res.OutputSize || stream.MaxError != res.MaxError {
		t.Fatalf("stream wire outcome (recalled %d, out %d, err %v) differs from batch (recalled %d, out %d, err %v)",
			stream.Recalled, stream.OutputSize, stream.MaxError, res.Recalled, res.OutputSize, res.MaxError)
	}
}

// TestRunBenchStreamHG drives the streaming kind through the identical
// bench path: the bounded HeavyGuardian structure must honor the same
// promised-vs-recalled contract the batch protocols do, with the -windows
// and -topk knobs reaching the facade.
func TestRunBenchStreamHG(t *testing.T) {
	res, err := runBench(benchConfig{
		N: 8000, Eps: 16, ItemBytes: 2, Protocol: "streamhg",
		Workload: "zipf", ZipfS: 1.4, Support: 100, Seed: 1,
		Windows: 2, TopK: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Promised < 1 || res.Recalled < res.Promised {
		t.Fatalf("promised %d, recalled %d — the streaming round regressed", res.Promised, res.Recalled)
	}
	if res.OutputSize > 24 {
		t.Fatalf("output size %d exceeds the requested top-24", res.OutputSize)
	}
}

// TestRunAllEmitsJSONArray drives the -protocol all sweep at a small size
// and pins the artifact shape BENCH_table1.json consumers parse.
func TestRunAllEmitsJSONArray(t *testing.T) {
	if testing.Short() {
		t.Skip("five full protocol rounds")
	}
	results, err := runAll(benchConfig{
		N: 6000, Eps: 4, ItemBytes: 2, Workload: "planted",
		ZipfS: 1.4, Support: 100, Seed: 1, Y: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(table1Protocols) {
		t.Fatalf("%d results, want %d", len(results), len(table1Protocols))
	}
	var buf bytes.Buffer
	if err := writeJSONAll(&buf, results); err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Protocol      string  `json:"protocol"`
		Workload      string  `json:"workload"`
		ReportsPerSec float64 `json:"ingest_reports_per_sec"`
		BytesPerRep   int     `json:"bytes_per_report"`
		SketchBytes   int     `json:"sketch_bytes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	for i, row := range parsed {
		if row.Protocol != table1Protocols[i] {
			t.Errorf("row %d protocol %q, want %q", i, row.Protocol, table1Protocols[i])
		}
		if row.Workload != "zipf" {
			t.Errorf("%s: sweep workload %q, want zipf", row.Protocol, row.Workload)
		}
		if row.ReportsPerSec <= 0 || row.BytesPerRep <= 0 || row.SketchBytes <= 0 {
			t.Errorf("%s: degenerate throughput row %+v", row.Protocol, row)
		}
	}
}

// TestRunOpenDomain drives the -opendomain sweep at a small size and pins
// the BENCH_opendomain.json artifact shape plus its headline claim: the
// interactive kinds discover at least as much of the true top-k as the
// single-round baselines with no candidate list anywhere.
func TestRunOpenDomain(t *testing.T) {
	results, err := runOpenDomain(benchConfig{
		N: 12000, Eps: 4, ItemBytes: 2, ZipfS: 1.4, Support: 64, Seed: 1, Y: 16, TopK: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(openDomainProtocols) {
		t.Fatalf("%d results, want %d", len(results), len(openDomainProtocols))
	}
	var buf bytes.Buffer
	if err := writeJSONOpen(&buf, results); err != nil {
		t.Fatal(err)
	}
	var parsed []struct {
		Protocol     string  `json:"protocol"`
		K            int     `json:"k"`
		RecallAtK    float64 `json:"recall_at_k"`
		Rounds       int     `json:"rounds"`
		BytesPerUser int     `json:"bytes_per_user"`
		WallMS       int64   `json:"wall_ms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	byName := map[string]float64{}
	for i, row := range parsed {
		if row.Protocol != openDomainProtocols[i] {
			t.Errorf("row %d protocol %q, want %q", i, row.Protocol, openDomainProtocols[i])
		}
		if row.K != 8 || row.RecallAtK < 0 || row.RecallAtK > 1 || row.BytesPerUser <= 0 {
			t.Errorf("%s: degenerate row %+v", row.Protocol, row)
		}
		if interactive := row.Protocol == "pem" || row.Protocol == "fedtrie"; interactive != (row.Rounds > 1) {
			t.Errorf("%s: rounds = %d", row.Protocol, row.Rounds)
		}
		byName[row.Protocol] = row.RecallAtK
	}
	if byName["pem"] == 0 {
		t.Error("pem discovered nothing on the open domain")
	}
	if byName["pem"] < byName["treehist"] {
		t.Errorf("pem recall %.2f below treehist %.2f", byName["pem"], byName["treehist"])
	}
}

// TestWriteText pins the human-readable report's load-bearing lines.
func TestWriteText(t *testing.T) {
	res, err := runBench(benchConfig{
		N: 4000, Eps: 4, ItemBytes: 4, Protocol: "pes",
		Workload: "planted", Seed: 1, Y: 16, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeText(&buf, res)
	out := buf.String()
	for _, want := range []string{"protocol=pes", "threshold", "recalled", "wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
