package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRunBenchJSON drives the extracted round function exactly as
// `hhbench -json` does and parses the emitted JSON result object back,
// pinning the output contract scripted consumers depend on.
func TestRunBenchJSON(t *testing.T) {
	// n large enough that the top planted fraction (25%) clears the
	// configuration's sqrt(n·M)-shaped recovery floor, keeping the recall
	// assertion non-vacuous.
	res, err := runBench(benchConfig{
		N: 16000, Eps: 4, ItemBytes: 4, Protocol: "pes",
		Workload: "planted", Seed: 1, Y: 64, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Protocol   string  `json:"protocol"`
		N          int     `json:"n"`
		Eps        float64 `json:"eps"`
		Workload   string  `json:"workload"`
		Threshold  float64 `json:"threshold"`
		Promised   int     `json:"promised"`
		Recalled   int     `json:"recalled"`
		OutputSize int     `json:"output_size"`
		MaxError   float64 `json:"max_recalled_error"`
		WallMS     int64   `json:"wall_ms"`
		Top        []struct {
			Item string  `json:"item"`
			Est  float64 `json:"estimate"`
			True int     `json:"true"`
		} `json:"top"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("emitted JSON does not parse: %v\n%s", err, buf.String())
	}
	if parsed.Protocol != "pes" || parsed.N != 16000 || parsed.Workload != "planted" {
		t.Fatalf("JSON round-trip mangled the config: %+v", parsed)
	}
	if parsed.Threshold <= 0 {
		t.Fatalf("threshold %v not positive", parsed.Threshold)
	}
	if parsed.Promised < 1 || parsed.Recalled < parsed.Promised {
		t.Fatalf("promised %d items, recalled %d — the seeded round regressed", parsed.Promised, parsed.Recalled)
	}
	if parsed.OutputSize != len(parsed.Top) && len(parsed.Top) != 5 {
		t.Fatalf("top rows %d inconsistent with output size %d", len(parsed.Top), parsed.OutputSize)
	}
	for _, row := range parsed.Top {
		if row.Item == "" {
			t.Fatal("top row with empty item")
		}
	}
}

// TestRunBenchBaselinesAndErrors smoke-tests the non-default protocol and
// workload switches plus the error paths so every main-package branch runs
// under `go test`.
func TestRunBenchBaselinesAndErrors(t *testing.T) {
	if _, err := runBench(benchConfig{
		N: 4000, Eps: 4, ItemBytes: 2, Protocol: "bitstogram",
		Workload: "zipf", ZipfS: 1.1, Support: 200, Seed: 1,
	}); err != nil {
		t.Fatalf("bitstogram/zipf round: %v", err)
	}
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "nope", Workload: "planted", Seed: 1}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
	if _, err := runBench(benchConfig{N: 1000, Eps: 4, ItemBytes: 2, Protocol: "pes", Workload: "nope", Seed: 1}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestWriteText pins the human-readable report's load-bearing lines.
func TestWriteText(t *testing.T) {
	res, err := runBench(benchConfig{
		N: 4000, Eps: 4, ItemBytes: 4, Protocol: "pes",
		Workload: "planted", Seed: 1, Y: 16, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	writeText(&buf, res)
	out := buf.String()
	for _, want := range []string{"protocol=pes", "threshold", "recalled", "wall time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text report missing %q:\n%s", want, out)
		}
	}
}
