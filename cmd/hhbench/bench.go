package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"sync"
	"time"

	"ldphh"
	"ldphh/internal/protocol"
	"ldphh/internal/workload"
)

// benchConfig parameterizes one measured heavy-hitters round; it mirrors
// the command-line flags so tests can drive the round without a subprocess.
type benchConfig struct {
	N         int
	Eps       float64
	ItemBytes int
	Protocol  string // any registered protocol name (ldphh.ParseKind)
	Transport string // inproc | tcp; "" = inproc
	Workload  string // planted | zipf | uniform
	ZipfS     float64
	Support   int
	Seed      uint64
	Y         int // per-coordinate hash range (pes)
	Workers   int    // Identify worker-pool size (pes; 0 = GOMAXPROCS)
	Fleets    int    // concurrent sender connections in tcp transport; 0 = 4
	Wire      string // tcp framing: batch (pipelined mega-batches) | stream (legacy per-frame); "" = batch
	Windows   int    // streaming per-user budget split (streamhg; 0 = facade default)
	TopK      int    // streaming answer size (streamhg; 0 = facade default)
}

// topRow is one of the leading output estimates with its ground truth.
type topRow struct {
	Item string  `json:"item"`
	Est  float64 `json:"estimate"`
	True int     `json:"true"`
}

// benchResult is the measured round, JSON-shaped for -json consumers.
type benchResult struct {
	Protocol      string   `json:"protocol"`
	Transport     string   `json:"transport"`
	Wire          string   `json:"wire,omitempty"`
	N             int      `json:"n"`
	Eps           float64  `json:"eps"`
	ItemBytes     int      `json:"item_bytes"`
	Workload      string   `json:"workload"`
	Threshold     float64  `json:"threshold"`
	Promised      int      `json:"promised"`
	Recalled      int      `json:"recalled"`
	OutputSize    int      `json:"output_size"`
	MaxError      float64  `json:"max_recalled_error"`
	WallMS        int64    `json:"wall_ms"`
	ReportMS      int64    `json:"report_ms"`
	IngestMS      int64    `json:"ingest_ms"`
	IdentifyMS    int64    `json:"identify_ms"`
	ReportsPerSec float64  `json:"ingest_reports_per_sec"`
	BytesPerRep   int      `json:"bytes_per_report"`
	SketchBytes   int      `json:"sketch_bytes"`
	Top           []topRow `json:"top"`
}

// enumerableKind reports whether the kind's items must be ordinals of a
// bounded explicit domain.
func enumerableKind(k ldphh.Kind) bool {
	switch k {
	case ldphh.KindSmallDomain, ldphh.KindDirectHistogram, ldphh.KindBassilySmith, ldphh.KindStreamHG:
		return true
	}
	return false
}

// buildDataset synthesizes the population. Enumerable-domain protocols
// reject the planted workload's uniform random filler (it falls outside
// any enumerable domain), so those kinds require zipf or uniform, whose
// items are small ordinals.
func buildDataset(cfg benchConfig, kind ldphh.Kind, rng *rand.Rand) (*workload.Dataset, error) {
	dom := workload.Domain{ItemBytes: cfg.ItemBytes}
	switch cfg.Workload {
	case "planted":
		if enumerableKind(kind) {
			return nil, fmt.Errorf("protocol %q runs over an enumerable domain; use -workload zipf or uniform", cfg.Protocol)
		}
		return workload.Planted(dom, cfg.N, []float64{0.25, 0.18, 0.12}, rng)
	case "zipf":
		return workload.Zipf(dom, cfg.N, cfg.Support, cfg.ZipfS, rng)
	case "uniform":
		return workload.Uniform(dom, cfg.N, cfg.Support, rng)
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.Workload)
	}
}

// newProtocol constructs one protocol instance from the config through the
// unified functional-options constructor. Both the device side and the
// server side of a round call it with identical arguments, which is the
// whole deployment contract: shared options, shared public randomness.
func newProtocol(cfg benchConfig, kind ldphh.Kind, ds *workload.Dataset) (ldphh.Protocol, error) {
	opts := []ldphh.Option{
		ldphh.WithEps(cfg.Eps), ldphh.WithN(cfg.N),
		ldphh.WithItemBytes(cfg.ItemBytes), ldphh.WithSeed(cfg.Seed),
	}
	if cfg.Y > 0 {
		opts = append(opts, ldphh.WithY(cfg.Y))
	}
	if cfg.Workers > 0 {
		opts = append(opts, ldphh.WithWorkers(cfg.Workers))
	}
	if enumerableKind(kind) {
		// zipf/uniform items are the ordinals [1, support]; pad by one for
		// the zero ordinal.
		opts = append(opts, ldphh.WithDomainSize(cfg.Support+1))
	}
	if kind == ldphh.KindStreamHG {
		if cfg.Windows > 0 {
			opts = append(opts, ldphh.WithWindows(cfg.Windows))
		}
		if cfg.TopK > 0 {
			opts = append(opts, ldphh.WithTopK(cfg.TopK))
		}
	}
	if kind == ldphh.KindPEM || kind == ldphh.KindFedTrie {
		if cfg.TopK > 0 {
			opts = append(opts, ldphh.WithTopK(cfg.TopK))
		}
	}
	if kind == ldphh.KindHashtogram {
		// A frequency oracle estimates a known dictionary; benchmark it on
		// the true top of the distribution (the deployment where the
		// candidate list is the product's URL/word allowlist).
		var candidates [][]byte
		for _, ic := range ds.TopK(32) {
			candidates = append(candidates, ic.Item)
		}
		opts = append(opts, ldphh.WithCandidates(candidates))
	}
	return ldphh.New(kind, opts...)
}

// runBench executes one full round — dataset synthesis, per-user reports,
// aggregation (in process or over TCP), identification — and scores it
// against exact ground truth. Every protocol goes through the identical
// unified code path; only the Kind differs.
func runBench(cfg benchConfig) (*benchResult, error) {
	kind, err := ldphh.ParseKind(cfg.Protocol)
	if err != nil {
		return nil, err
	}
	if cfg.Transport == "" {
		cfg.Transport = "inproc"
	}
	if cfg.Fleets <= 0 {
		cfg.Fleets = 4
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 2))
	ds, err := buildDataset(cfg, kind, rng)
	if err != nil {
		return nil, err
	}

	device, err := newProtocol(cfg, kind, ds)
	if err != nil {
		return nil, err
	}
	agg, err := newProtocol(cfg, kind, ds)
	if err != nil {
		return nil, err
	}

	start := time.Now()

	// Device phase: one wire report per user.
	urng := rand.New(rand.NewPCG(cfg.Seed, 3))
	reports := make([]ldphh.WireReport, cfg.N)
	for i, x := range ds.Items {
		if reports[i], err = device.Report(x, i, urng); err != nil {
			return nil, err
		}
	}
	reportDur := time.Since(start)

	// Aggregation phase.
	ctx := context.Background()
	ingestStart := time.Now()
	var identifyDur time.Duration
	var est []ldphh.Estimate
	switch cfg.Transport {
	case "inproc":
		const window = 8192
		for lo := 0; lo < len(reports); lo += window {
			hi := min(lo+window, len(reports))
			if err := agg.AbsorbBatch(reports[lo:hi]); err != nil {
				return nil, err
			}
		}
		idStart := time.Now()
		if est, err = agg.Identify(ctx); err != nil {
			return nil, err
		}
		identifyDur = time.Since(idStart)
	case "tcp":
		srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		defer srv.Close()
		send := ldphh.SendWireReports
		switch cfg.Wire {
		case "", "batch":
		case "stream":
			send = protocol.SendWire
		default:
			return nil, fmt.Errorf("unknown wire %q (batch | stream)", cfg.Wire)
		}
		var wg sync.WaitGroup
		sendErrs := make([]error, cfg.Fleets)
		for f := 0; f < cfg.Fleets; f++ {
			var batch []ldphh.WireReport
			for i := f; i < len(reports); i += cfg.Fleets {
				batch = append(batch, reports[i])
			}
			wg.Add(1)
			go func(f int, batch []ldphh.WireReport) {
				defer wg.Done()
				sendErrs[f] = send(ctx, srv.Addr(), batch)
			}(f, batch)
		}
		wg.Wait()
		for _, err := range sendErrs {
			if err != nil {
				return nil, err
			}
		}
		if got := srv.Absorbed(); got != cfg.N {
			return nil, fmt.Errorf("server absorbed %d of %d reports", got, cfg.N)
		}
		idStart := time.Now()
		if est, err = ldphh.RequestIdentifyContext(ctx, srv.Addr()); err != nil {
			return nil, err
		}
		identifyDur = time.Since(idStart)
	default:
		return nil, fmt.Errorf("unknown transport %q (inproc | tcp)", cfg.Transport)
	}
	ingestDur := time.Since(ingestStart) - identifyDur
	elapsed := time.Since(start)

	// Scoring: the protocol states its own recovery floor.
	threshold := 0.0
	if c, ok := agg.(ldphh.Calibrated); ok {
		threshold = c.MinRecoverableFrequency()
	}
	heavy := ds.HeavierThan(int(threshold))
	if kind == ldphh.KindHashtogram {
		// The oracle only answers its candidate set; score on that set.
		heavy = filterToTop(heavy, ds, 32)
	}
	recalled := 0
	maxErr := 0.0
	for _, h := range heavy {
		for _, e := range est {
			if string(e.Item) == string(h.Item) {
				recalled++
				if d := math.Abs(e.Count - float64(h.Count)); d > maxErr {
					maxErr = d
				}
				break
			}
		}
	}
	wire := ""
	if cfg.Transport == "tcp" {
		if wire = cfg.Wire; wire == "" {
			wire = "batch"
		}
	}
	res := &benchResult{
		Protocol: cfg.Protocol, Transport: cfg.Transport, Wire: wire,
		N: cfg.N, Eps: cfg.Eps, ItemBytes: cfg.ItemBytes,
		Workload: cfg.Workload, Threshold: threshold, Promised: len(heavy),
		Recalled: recalled, OutputSize: len(est), MaxError: maxErr,
		WallMS:        elapsed.Milliseconds(),
		ReportMS:      reportDur.Milliseconds(),
		IngestMS:      ingestDur.Milliseconds(),
		IdentifyMS:    identifyDur.Milliseconds(),
		ReportsPerSec: float64(cfg.N) / max(ingestDur.Seconds(), 1e-9),
		BytesPerRep:   agg.BytesPerReport(),
		SketchBytes:   agg.SketchBytes(),
	}
	for i, e := range est {
		if i >= 5 {
			break
		}
		res.Top = append(res.Top, topRow{
			Item: fmt.Sprintf("%x", e.Item),
			Est:  e.Count,
			True: ds.Count(e.Item),
		})
	}
	return res, nil
}

// filterToTop intersects the heavy list with the dataset's top-k items.
func filterToTop(heavy []workload.ItemCount, ds *workload.Dataset, k int) []workload.ItemCount {
	top := make(map[string]bool, k)
	for _, ic := range ds.TopK(k) {
		top[string(ic.Item)] = true
	}
	var out []workload.ItemCount
	for _, h := range heavy {
		if top[string(h.Item)] {
			out = append(out, h)
		}
	}
	return out
}

// table1Protocols is the -protocol all sweep: every heavy-hitters protocol
// of the paper's Table 1 comparison, driven through the identical path,
// plus the continuous-query streaming kind so its throughput rides the
// same artifact.
var table1Protocols = []string{"pes", "smalldomain", "bitstogram", "treehist", "bassilysmith", "streamhg"}

// runAll sweeps the Table 1 protocols with one shared config, forcing the
// zipf workload (legal for every domain regime).
func runAll(cfg benchConfig) ([]*benchResult, error) {
	var out []*benchResult
	for _, name := range table1Protocols {
		c := cfg
		c.Protocol = name
		c.Workload = "zipf"
		res, err := runBench(c)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// openResult is one open-domain discovery row: scored by recall against
// the true top-k with no candidate list handed to any protocol.
type openResult struct {
	Protocol     string  `json:"protocol"`
	N            int     `json:"n"`
	Eps          float64 `json:"eps"`
	ItemBytes    int     `json:"item_bytes"`
	K            int     `json:"k"`
	RecallAtK    float64 `json:"recall_at_k"`
	Rounds       int     `json:"rounds"`
	BytesPerUser int     `json:"bytes_per_user"`
	OutputSize   int     `json:"output_size"`
	WallMS       int64   `json:"wall_ms"`
}

// openDomainProtocols is the -opendomain sweep: the two interactive
// discovery kinds against the single-round open-domain machinery from the
// source paper's comparison.
var openDomainProtocols = []string{"pem", "fedtrie", "treehist", "pes"}

// runOpenDomain sweeps the open-domain protocols over one zipf population,
// scoring each by recall@k against exact ground truth. Interactive kinds
// are driven round by round in process (each user reports once, in their
// group's round, with the deterministic per-(round, user) generator);
// single-round kinds take the usual one-shot path. Every user sends exactly
// one report either way, so bytes_per_user is the payload size.
func runOpenDomain(cfg benchConfig) ([]*openResult, error) {
	k := cfg.TopK
	if k == 0 {
		k = 8
	}
	ctx := context.Background()
	var out []*openResult
	for _, name := range openDomainProtocols {
		kind, err := ldphh.ParseKind(name)
		if err != nil {
			return nil, err
		}
		c := cfg
		c.Protocol = name
		c.Workload = "zipf"
		c.TopK = k
		rng := rand.New(rand.NewPCG(c.Seed, 2))
		ds, err := workload.Zipf(workload.Domain{ItemBytes: c.ItemBytes}, c.N, c.Support, c.ZipfS, rng)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		// One instance serves both halves in process; for interactive kinds
		// that also keeps device and server round state trivially in sync.
		h, err := newProtocol(c, kind, ds)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		start := time.Now()
		rounds := 1
		if it, ok := ldphh.AsInteractive(h); ok {
			rounds = 0
			for rs := it.RoundState(); !rs.Done; rs = it.RoundState() {
				for i, x := range ds.Items {
					wr, err := h.Report(x, i, ldphh.RoundRand(c.Seed, rs.Round, i))
					if errors.Is(err, ldphh.ErrNotInRound) {
						continue
					}
					if err != nil {
						return nil, fmt.Errorf("%s report %d: %w", name, i, err)
					}
					if err := h.Absorb(wr); err != nil {
						return nil, fmt.Errorf("%s absorb %d: %w", name, i, err)
					}
				}
				if _, err := it.AdvanceRound(); err != nil {
					return nil, fmt.Errorf("%s advance: %w", name, err)
				}
				rounds++
			}
		} else {
			urng := rand.New(rand.NewPCG(c.Seed, 3))
			for i, x := range ds.Items {
				wr, err := h.Report(x, i, urng)
				if err != nil {
					return nil, fmt.Errorf("%s report %d: %w", name, i, err)
				}
				if err := h.Absorb(wr); err != nil {
					return nil, fmt.Errorf("%s absorb %d: %w", name, i, err)
				}
			}
		}
		est, err := h.Identify(ctx)
		if err != nil {
			return nil, fmt.Errorf("%s identify: %w", name, err)
		}
		elapsed := time.Since(start)

		have := make(map[string]bool, len(est))
		for _, e := range est {
			have[string(e.Item)] = true
		}
		hits := 0
		for _, tc := range ds.TopK(k) {
			if have[string(tc.Item)] {
				hits++
			}
		}
		out = append(out, &openResult{
			Protocol: name, N: c.N, Eps: c.Eps, ItemBytes: c.ItemBytes,
			K: k, RecallAtK: float64(hits) / float64(k), Rounds: rounds,
			BytesPerUser: h.BytesPerReport(), OutputSize: len(est),
			WallMS: elapsed.Milliseconds(),
		})
	}
	return out, nil
}

// writeJSONOpen emits the open-domain sweep as one indented JSON array
// (the BENCH_opendomain.json artifact shape).
func writeJSONOpen(w io.Writer, res []*openResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeTextOpen emits the human-readable open-domain row.
func writeTextOpen(w io.Writer, res *openResult) {
	fmt.Fprintf(w, "protocol=%-8s recall@%d=%.2f rounds=%d bytes/user=%d output=%d wall=%dms\n",
		res.Protocol, res.K, res.RecallAtK, res.Rounds, res.BytesPerUser, res.OutputSize, res.WallMS)
}

// writeJSON emits one result as an indented JSON object.
func writeJSON(w io.Writer, res *benchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeJSONAll emits a result list as one indented JSON array (the
// BENCH_table1.json artifact shape).
func writeJSONAll(w io.Writer, res []*benchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeText emits the human-readable report.
func writeText(w io.Writer, res *benchResult) {
	fmt.Fprintf(w, "protocol=%s transport=%s n=%d eps=%.1f |X|=256^%d workload=%s\n",
		res.Protocol, res.Transport, res.N, res.Eps, res.ItemBytes, res.Workload)
	fmt.Fprintf(w, "threshold (min recoverable frequency): %.0f (%.1f%% of n)\n",
		res.Threshold, 100*res.Threshold/float64(res.N))
	fmt.Fprintf(w, "items above threshold: %d, recalled: %d\n", res.Promised, res.Recalled)
	fmt.Fprintf(w, "output list size: %d, worst recalled-item error: %.0f\n", res.OutputSize, res.MaxError)
	fmt.Fprintf(w, "communication: %d payload bytes/report; server memory: %d bytes\n",
		res.BytesPerRep, res.SketchBytes)
	fmt.Fprintf(w, "wall time %dms (reports %dms, ingest %dms at %.2f M/s, identify %dms)\n",
		res.WallMS, res.ReportMS, res.IngestMS, res.ReportsPerSec/1e6, res.IdentifyMS)
	if len(res.Top) > 0 {
		fmt.Fprintln(w, "top estimates:")
		for _, row := range res.Top {
			fmt.Fprintf(w, "  %s  est=%8.0f  true=%d\n", row.Item, row.Est, row.True)
		}
	}
}
