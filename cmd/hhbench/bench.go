package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"time"

	"ldphh/internal/baseline"
	"ldphh/internal/core"
	"ldphh/internal/workload"
)

// benchConfig parameterizes one measured heavy-hitters round; it mirrors
// the command-line flags so tests can drive the round without a subprocess.
type benchConfig struct {
	N         int
	Eps       float64
	ItemBytes int
	Protocol  string // pes | bitstogram | treehist
	Workload  string // planted | zipf | uniform
	ZipfS     float64
	Support   int
	Seed      uint64
	Y         int // per-coordinate hash range (pes)
	Workers   int // Identify worker-pool size (pes; 0 = GOMAXPROCS)
}

// topRow is one of the leading output estimates with its ground truth.
type topRow struct {
	Item string  `json:"item"`
	Est  float64 `json:"estimate"`
	True int     `json:"true"`
}

// benchResult is the measured round, JSON-shaped for -json consumers.
type benchResult struct {
	Protocol   string   `json:"protocol"`
	N          int      `json:"n"`
	Eps        float64  `json:"eps"`
	ItemBytes  int      `json:"item_bytes"`
	Workload   string   `json:"workload"`
	Threshold  float64  `json:"threshold"`
	Promised   int      `json:"promised"`
	Recalled   int      `json:"recalled"`
	OutputSize int      `json:"output_size"`
	MaxError   float64  `json:"max_recalled_error"`
	WallMS     int64    `json:"wall_ms"`
	Top        []topRow `json:"top"`
}

// runBench executes one full round — dataset synthesis, per-user reports,
// aggregation, identification — and scores it against exact ground truth.
func runBench(cfg benchConfig) (*benchResult, error) {
	dom := workload.Domain{ItemBytes: cfg.ItemBytes}
	rng := rand.New(rand.NewPCG(cfg.Seed, 2))

	var ds *workload.Dataset
	var err error
	switch cfg.Workload {
	case "planted":
		ds, err = workload.Planted(dom, cfg.N, []float64{0.25, 0.18, 0.12}, rng)
	case "zipf":
		ds, err = workload.Zipf(dom, cfg.N, cfg.Support, cfg.ZipfS, rng)
	case "uniform":
		ds, err = workload.Uniform(dom, cfg.N, cfg.Support, rng)
	default:
		err = fmt.Errorf("unknown workload %q", cfg.Workload)
	}
	if err != nil {
		return nil, err
	}

	var est []baseline.Estimate
	var threshold float64
	start := time.Now()
	switch cfg.Protocol {
	case "pes":
		p, err := core.New(core.Params{
			Eps: cfg.Eps, N: cfg.N, ItemBytes: cfg.ItemBytes,
			Y: cfg.Y, Workers: cfg.Workers, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		threshold = p.Params().MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(cfg.Seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			if err != nil {
				return nil, err
			}
			if err := p.Absorb(rep); err != nil {
				return nil, err
			}
		}
		coreEst, err := p.Identify()
		if err != nil {
			return nil, err
		}
		for _, e := range coreEst {
			est = append(est, baseline.Estimate{Item: e.Item, Count: e.Count})
		}
	case "bitstogram":
		p, err := baseline.NewBitstogram(baseline.BitstogramParams{
			Eps: cfg.Eps, N: cfg.N, ItemBytes: cfg.ItemBytes, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		threshold = p.MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(cfg.Seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			if err != nil {
				return nil, err
			}
			if err := p.Absorb(rep); err != nil {
				return nil, err
			}
		}
		if est, err = p.Identify(0); err != nil {
			return nil, err
		}
	case "treehist":
		p, err := baseline.NewTreeHist(baseline.TreeHistParams{
			Eps: cfg.Eps, N: cfg.N, ItemBytes: cfg.ItemBytes, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		threshold = p.MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(cfg.Seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			if err != nil {
				return nil, err
			}
			if err := p.Absorb(rep); err != nil {
				return nil, err
			}
		}
		if est, err = p.Identify(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown protocol %q", cfg.Protocol)
	}
	elapsed := time.Since(start)

	heavy := ds.HeavierThan(int(threshold))
	recalled := 0
	maxErr := 0.0
	for _, h := range heavy {
		for _, e := range est {
			if string(e.Item) == string(h.Item) {
				recalled++
				if d := math.Abs(e.Count - float64(h.Count)); d > maxErr {
					maxErr = d
				}
				break
			}
		}
	}
	res := &benchResult{
		Protocol: cfg.Protocol, N: cfg.N, Eps: cfg.Eps, ItemBytes: cfg.ItemBytes,
		Workload: cfg.Workload, Threshold: threshold, Promised: len(heavy),
		Recalled: recalled, OutputSize: len(est), MaxError: maxErr,
		WallMS: elapsed.Milliseconds(),
	}
	for i, e := range est {
		if i >= 5 {
			break
		}
		res.Top = append(res.Top, topRow{
			Item: fmt.Sprintf("%x", e.Item),
			Est:  e.Count,
			True: ds.Count(e.Item),
		})
	}
	return res, nil
}

// writeJSON emits the result as one indented JSON object.
func writeJSON(w io.Writer, res *benchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(res)
}

// writeText emits the human-readable report.
func writeText(w io.Writer, res *benchResult) {
	fmt.Fprintf(w, "protocol=%s n=%d eps=%.1f |X|=256^%d workload=%s\n",
		res.Protocol, res.N, res.Eps, res.ItemBytes, res.Workload)
	fmt.Fprintf(w, "threshold (min recoverable frequency): %.0f (%.1f%% of n)\n",
		res.Threshold, 100*res.Threshold/float64(res.N))
	fmt.Fprintf(w, "items above threshold: %d, recalled: %d\n", res.Promised, res.Recalled)
	fmt.Fprintf(w, "output list size: %d, worst recalled-item error: %.0f\n", res.OutputSize, res.MaxError)
	fmt.Fprintf(w, "wall time (reports + aggregation + identify): %dms\n", res.WallMS)
	if len(res.Top) > 0 {
		fmt.Fprintln(w, "top estimates:")
		for _, row := range res.Top {
			fmt.Fprintf(w, "  %s  est=%8.0f  true=%d\n", row.Item, row.Est, row.True)
		}
	}
}
