// Command hhbench runs one parameterized heavy-hitters round and reports
// recall, precision and error against exact ground truth.
//
// Usage:
//
//	hhbench -n 60000 -eps 4 -itembytes 4 -protocol pes -workload zipf
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"ldphh/internal/baseline"
	"ldphh/internal/core"
	"ldphh/internal/workload"
)

var (
	n         = flag.Int("n", 60000, "number of users")
	eps       = flag.Float64("eps", 4, "privacy budget per user")
	itemBytes = flag.Int("itembytes", 4, "item width in bytes")
	proto     = flag.String("protocol", "pes", "pes | bitstogram | treehist")
	load      = flag.String("workload", "planted", "planted | zipf | uniform")
	zipfS     = flag.Float64("zipf-s", 1.1, "zipf exponent")
	support   = flag.Int("support", 1000, "zipf/uniform support size")
	seed      = flag.Uint64("seed", 1, "seed for all randomness")
	y         = flag.Int("y", 64, "per-coordinate hash range (pes)")
	jsonOut   = flag.Bool("json", false, "emit a JSON result object instead of text")
)

func main() {
	flag.Parse()
	dom := workload.Domain{ItemBytes: *itemBytes}
	rng := rand.New(rand.NewPCG(*seed, 2))

	var ds *workload.Dataset
	var err error
	switch *load {
	case "planted":
		ds, err = workload.Planted(dom, *n, []float64{0.25, 0.18, 0.12}, rng)
	case "zipf":
		ds, err = workload.Zipf(dom, *n, *support, *zipfS, rng)
	case "uniform":
		ds, err = workload.Uniform(dom, *n, *support, rng)
	default:
		err = fmt.Errorf("unknown workload %q", *load)
	}
	fatal(err)

	var est []baseline.Estimate
	var threshold float64
	start := time.Now()
	switch *proto {
	case "pes":
		p, err := core.New(core.Params{Eps: *eps, N: *n, ItemBytes: *itemBytes, Y: *y, Seed: *seed})
		fatal(err)
		threshold = p.Params().MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(*seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			fatal(err)
			fatal(p.Absorb(rep))
		}
		coreEst, err := p.Identify()
		fatal(err)
		for _, e := range coreEst {
			est = append(est, baseline.Estimate{Item: e.Item, Count: e.Count})
		}
	case "bitstogram":
		p, err := baseline.NewBitstogram(baseline.BitstogramParams{
			Eps: *eps, N: *n, ItemBytes: *itemBytes, Seed: *seed,
		})
		fatal(err)
		threshold = p.MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(*seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			fatal(err)
			fatal(p.Absorb(rep))
		}
		est, err = p.Identify(0)
		fatal(err)
	case "treehist":
		p, err := baseline.NewTreeHist(baseline.TreeHistParams{
			Eps: *eps, N: *n, ItemBytes: *itemBytes, Seed: *seed,
		})
		fatal(err)
		threshold = p.MinRecoverableFrequency()
		urng := rand.New(rand.NewPCG(*seed, 3))
		for i, x := range ds.Items {
			rep, err := p.Report(x, i, urng)
			fatal(err)
			fatal(p.Absorb(rep))
		}
		est, err = p.Identify()
		fatal(err)
	default:
		fatal(fmt.Errorf("unknown protocol %q", *proto))
	}
	elapsed := time.Since(start)

	heavy := ds.HeavierThan(int(threshold))
	recalled := 0
	maxErr := 0.0
	for _, h := range heavy {
		for _, e := range est {
			if string(e.Item) == string(h.Item) {
				recalled++
				if d := math.Abs(e.Count - float64(h.Count)); d > maxErr {
					maxErr = d
				}
				break
			}
		}
	}
	if *jsonOut {
		type row struct {
			Item string  `json:"item"`
			Est  float64 `json:"estimate"`
			True int     `json:"true"`
		}
		out := struct {
			Protocol   string  `json:"protocol"`
			N          int     `json:"n"`
			Eps        float64 `json:"eps"`
			ItemBytes  int     `json:"item_bytes"`
			Workload   string  `json:"workload"`
			Threshold  float64 `json:"threshold"`
			Promised   int     `json:"promised"`
			Recalled   int     `json:"recalled"`
			OutputSize int     `json:"output_size"`
			MaxError   float64 `json:"max_recalled_error"`
			WallMS     int64   `json:"wall_ms"`
			Top        []row   `json:"top"`
		}{
			Protocol: *proto, N: *n, Eps: *eps, ItemBytes: *itemBytes,
			Workload: *load, Threshold: threshold, Promised: len(heavy),
			Recalled: recalled, OutputSize: len(est), MaxError: maxErr,
			WallMS: elapsed.Milliseconds(),
		}
		for i, e := range est {
			if i >= 5 {
				break
			}
			out.Top = append(out.Top, row{
				Item: fmt.Sprintf("%x", e.Item),
				Est:  e.Count,
				True: ds.Count(e.Item),
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatal(enc.Encode(out))
		return
	}
	fmt.Printf("protocol=%s n=%d eps=%.1f |X|=256^%d workload=%s\n",
		*proto, *n, *eps, *itemBytes, *load)
	fmt.Printf("threshold (min recoverable frequency): %.0f (%.1f%% of n)\n",
		threshold, 100*threshold/float64(*n))
	fmt.Printf("items above threshold: %d, recalled: %d\n", len(heavy), recalled)
	fmt.Printf("output list size: %d, worst recalled-item error: %.0f\n", len(est), maxErr)
	fmt.Printf("wall time (reports + aggregation + identify): %v\n", elapsed.Round(time.Millisecond))
	if len(est) > 0 {
		fmt.Println("top estimates:")
		for i, e := range est {
			if i >= 5 {
				break
			}
			fmt.Printf("  %x  est=%8.0f  true=%d\n", e.Item, e.Count, ds.Count(e.Item))
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}
