// Command hhbench runs one parameterized heavy-hitters round and reports
// recall, precision and error against exact ground truth.
//
// Usage:
//
//	hhbench -n 60000 -eps 4 -itembytes 4 -protocol pes -workload zipf
package main

import (
	"flag"
	"fmt"
	"os"
)

var (
	n         = flag.Int("n", 60000, "number of users")
	eps       = flag.Float64("eps", 4, "privacy budget per user")
	itemBytes = flag.Int("itembytes", 4, "item width in bytes")
	proto     = flag.String("protocol", "pes", "pes | bitstogram | treehist")
	load      = flag.String("workload", "planted", "planted | zipf | uniform")
	zipfS     = flag.Float64("zipf-s", 1.1, "zipf exponent")
	support   = flag.Int("support", 1000, "zipf/uniform support size")
	seed      = flag.Uint64("seed", 1, "seed for all randomness")
	y         = flag.Int("y", 64, "per-coordinate hash range (pes)")
	workers   = flag.Int("workers", 0, "Identify worker-pool size (pes; 0 = GOMAXPROCS)")
	jsonOut   = flag.Bool("json", false, "emit a JSON result object instead of text")
)

func main() {
	flag.Parse()
	res, err := runBench(benchConfig{
		N:         *n,
		Eps:       *eps,
		ItemBytes: *itemBytes,
		Protocol:  *proto,
		Workload:  *load,
		ZipfS:     *zipfS,
		Support:   *support,
		Seed:      *seed,
		Y:         *y,
		Workers:   *workers,
	})
	fatal(err)
	if *jsonOut {
		fatal(writeJSON(os.Stdout, res))
		return
	}
	writeText(os.Stdout, res)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}
