// Command hhbench runs parameterized heavy-hitters rounds through the
// unified protocol surface and reports recall, error and throughput against
// exact ground truth. Every registered protocol is benchable through the
// identical code path, in process or over real TCP:
//
//	hhbench -n 60000 -eps 4 -itembytes 4 -protocol pes -workload zipf
//	hhbench -protocol treehist -transport tcp -itembytes 2
//	hhbench -protocol all -json -out BENCH_table1.json
//	hhbench -opendomain -json -out BENCH_opendomain.json
//
// -protocol all sweeps the Table 1 comparison (pes, smalldomain,
// bitstogram, treehist, bassilysmith, streamhg) over the zipf workload and
// emits a JSON array — the per-protocol throughput artifact CI accumulates.
// -opendomain sweeps the multi-round discovery kinds (pem, fedtrie) against
// treehist and pes on a zipf population with no candidate list, scoring
// recall@k against exact ground truth (the BENCH_opendomain.json artifact).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"ldphh/internal/profiling"
)

var (
	n         = flag.Int("n", 60000, "number of users")
	eps       = flag.Float64("eps", 4, "privacy budget per user")
	itemBytes = flag.Int("itembytes", 4, "item width in bytes")
	proto     = flag.String("protocol", "pes", "registered protocol name, or 'all' for the Table 1 sweep")
	transport = flag.String("transport", "inproc", "inproc | tcp (full report round trip over a real socket)")
	load      = flag.String("workload", "planted", "planted | zipf | uniform")
	zipfS     = flag.Float64("zipf-s", 1.1, "zipf exponent")
	support   = flag.Int("support", 1000, "zipf/uniform support size")
	seed      = flag.Uint64("seed", 1, "seed for all randomness")
	y         = flag.Int("y", 64, "per-coordinate hash range (pes)")
	workers   = flag.Int("workers", 0, "Identify worker-pool size (pes; 0 = GOMAXPROCS)")
	fleets    = flag.Int("fleets", 4, "concurrent sender connections (tcp transport)")
	wire      = flag.String("wire", "batch", "tcp wire framing: batch (pipelined mega-batches) | stream (legacy per-frame)")
	windows   = flag.Int("windows", 0, "per-user budget split w (streamhg; 0 = facade default)")
	topk      = flag.Int("topk", 0, "answer size: streaming top-k (streamhg) or discovery target k (pem/fedtrie, -opendomain; 0 = default)")
	openDom   = flag.Bool("opendomain", false, "sweep the open-domain discovery comparison (pem, fedtrie, treehist, pes) with no candidate list")
	jsonOut   = flag.Bool("json", false, "emit JSON instead of text")
	outPath   = flag.String("out", "", "also write the (JSON) result to this file")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProf   = flag.String("memprofile", "", "write a post-run heap profile to this file")
)

func main() {
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProf, *memProf)
	fatal(err)
	cfg := benchConfig{
		N:         *n,
		Eps:       *eps,
		ItemBytes: *itemBytes,
		Protocol:  *proto,
		Transport: *transport,
		Workload:  *load,
		ZipfS:     *zipfS,
		Support:   *support,
		Seed:      *seed,
		Y:         *y,
		Workers:   *workers,
		Fleets:    *fleets,
		Wire:      *wire,
		Windows:   *windows,
		TopK:      *topk,
	}
	if *openDom {
		results, err := runOpenDomain(cfg)
		fatal(err)
		fatal(stopProf())
		fatal(emit(func(w io.Writer) error { return writeJSONOpen(w, results) }))
		if !*jsonOut {
			for _, res := range results {
				writeTextOpen(os.Stdout, res)
			}
		}
		return
	}
	if *proto == "all" {
		results, err := runAll(cfg)
		fatal(err)
		fatal(stopProf())
		fatal(emit(func(w io.Writer) error { return writeJSONAll(w, results) }))
		if !*jsonOut {
			for _, res := range results {
				writeText(os.Stdout, res)
				fmt.Println()
			}
		}
		return
	}
	res, err := runBench(cfg)
	fatal(err)
	fatal(stopProf())
	fatal(emit(func(w io.Writer) error { return writeJSON(w, res) }))
	if !*jsonOut {
		writeText(os.Stdout, res)
	}
}

// emit writes the JSON form to -out (when set) and to stdout (when -json
// was requested).
func emit(writeTo func(io.Writer) error) error {
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := writeTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *jsonOut {
		return writeTo(os.Stdout)
	}
	return nil
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "hhbench:", err)
		os.Exit(1)
	}
}
