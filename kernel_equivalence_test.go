package ldphh_test

// Kernel equivalence suite: Identify is pinned bit-for-bit across every
// registered protocol kind and across worker counts, against golden SHA-256
// digests committed in testdata/kernel_golden.json. The goldens were
// generated from the float64 accumulator kernels, so the int64
// structure-of-arrays rewrite (and any future kernel work) must reproduce
// the exact same output bits — not just the same heavy-hitter set.
//
// Regenerate after an intentional output change (e.g. new randomness
// layout) with:
//
//	go test -run TestKernelEquivalence -update .

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"ldphh"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/kernel_golden.json from the current kernels")

const kernelGoldenPath = "testdata/kernel_golden.json"

// kernelRound runs one deterministic in-process round for the kind at the
// given Identify worker bound and returns a digest of the full ordered
// (item, count-bits) output.
func kernelRound(t *testing.T, kind ldphh.Kind, workers int) string {
	t.Helper()
	// The population-splitting baselines need a larger round for anything to
	// clear their sqrt(n·L)-shaped admission floor (cf. TestNewAllKinds).
	n := 6000
	if kind == ldphh.KindBitstogram || kind == ldphh.KindTreeHist {
		n = 20000
	}
	opts := []ldphh.Option{
		ldphh.WithEps(4), ldphh.WithN(n), ldphh.WithItemBytes(2),
		ldphh.WithSeed(99), ldphh.WithDomainSize(64), ldphh.WithWorkers(workers),
	}
	if kind == ldphh.KindHashtogram {
		cands := make([][]byte, 40)
		for i := range cands {
			cands[i] = ordinalItem(uint64(i), 2)
		}
		opts = append(opts, ldphh.WithCandidates(cands))
	}
	h, err := ldphh.New(kind, opts...)
	if err != nil {
		t.Fatal(err)
	}
	// The same deterministic population TestNewAllKinds plants: one 40%
	// heavy item, one 30% item, a light tail.
	itemFor := func(i int) []byte {
		switch {
		case i%10 < 4:
			return ordinalItem(1, 2)
		case i%10 < 7:
			return ordinalItem(2, 2)
		default:
			return ordinalItem(uint64(3+i%32), 2)
		}
	}
	if it, ok := ldphh.AsInteractive(h); ok {
		// Interactive kinds: drive the rounds, each user reporting in their
		// group's round with the per-(round, user) generator — the digest
		// must come out identical at every worker count.
		for rs := it.RoundState(); !rs.Done; rs = it.RoundState() {
			for i := 0; i < n; i++ {
				wr, err := h.Report(itemFor(i), i, ldphh.RoundRand(99, rs.Round, i))
				if errors.Is(err, ldphh.ErrNotInRound) {
					continue
				}
				if err != nil {
					t.Fatalf("report %d round %d: %v", i, rs.Round, err)
				}
				if err := h.Absorb(wr); err != nil {
					t.Fatalf("absorb %d round %d: %v", i, rs.Round, err)
				}
			}
			if _, err := it.AdvanceRound(); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		rng := rand.New(rand.NewPCG(3, 4))
		for i := 0; i < n; i++ {
			wr, err := h.Report(itemFor(i), i, rng)
			if err != nil {
				t.Fatalf("report %d: %v", i, err)
			}
			if err := h.Absorb(wr); err != nil {
				t.Fatalf("absorb %d: %v", i, err)
			}
		}
	}
	est, err := h.Identify(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(est) == 0 {
		t.Fatalf("%v: Identify returned no estimates", kind)
	}
	dig := sha256.New()
	for _, e := range est {
		fmt.Fprintf(dig, "%x:%016x\n", e.Item, math.Float64bits(e.Count))
	}
	return hex.EncodeToString(dig.Sum(nil))
}

// TestKernelEquivalence checks all three contracts at once: Identify output
// is identical at Workers ∈ {1, 4, GOMAXPROCS} for every kind, and equal to
// the committed pre-rewrite golden digest.
func TestKernelEquivalence(t *testing.T) {
	golden := map[string]string{}
	if !*updateGolden {
		raw, err := os.ReadFile(kernelGoldenPath)
		if err != nil {
			t.Fatalf("read goldens (regenerate with -update): %v", err)
		}
		if err := json.Unmarshal(raw, &golden); err != nil {
			t.Fatalf("parse goldens: %v", err)
		}
	}
	workerSet := []int{1, 4, runtime.GOMAXPROCS(0)}
	got := map[string]string{}
	for _, kind := range ldphh.Kinds() {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			base := kernelRound(t, kind, workerSet[0])
			for _, w := range workerSet[1:] {
				if d := kernelRound(t, kind, w); d != base {
					t.Errorf("Identify digest at Workers=%d differs from Workers=%d: %s != %s",
						w, workerSet[0], d, base)
				}
			}
			got[kind.String()] = base
			if !*updateGolden {
				want, ok := golden[kind.String()]
				if !ok {
					t.Fatalf("no golden digest for %v (regenerate with -update)", kind)
				}
				if base != want {
					t.Errorf("Identify digest %s, want golden %s — kernel output changed bits", base, want)
				}
			}
		})
	}
	if *updateGolden {
		raw, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(kernelGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(kernelGoldenPath, append(raw, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", kernelGoldenPath)
	}
}
