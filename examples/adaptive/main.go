// Adaptive analysis: the payoff of Theorem 4.5. An analyst runs an
// *adaptively chosen* sequence of frequency queries against an LDP-collected
// sketch, each query chosen to chase the largest previous answer — the
// classic recipe for overfitting a sample. Because an ε-LDP protocol has
// β-approximate max-information nε²/2 + ε·sqrt(2n·ln(1/β)) (far below the
// central model's nε), the adaptively selected statistic still generalizes:
// the chased "winner" frequency stays close to its true population value.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"ldphh"
)

func main() {
	const n = 50000
	const eps = 0.5
	const rounds = 12

	// Population: 64 candidate items with mild popularity differences.
	dom := ldphh.Domain{ItemBytes: 8}
	rng := rand.New(rand.NewPCG(1, 2))
	var items [][]byte
	truth := make([]int, 64)
	for i := 0; i < n; i++ {
		v := rng.IntN(64)
		truth[v]++
		items = append(items, dom.Item(uint64(v)))
	}

	oracle, err := ldphh.NewHashtogram(ldphh.HashtogramParams{Eps: eps, N: n, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	urng := rand.New(rand.NewPCG(3, 4))
	for i, item := range items {
		if err := oracle.Absorb(oracle.Report(item, i, urng)); err != nil {
			log.Fatal(err)
		}
	}
	oracle.Finalize()

	fmt.Printf("max-information budget (Theorem 4.5): %.1f nats at β=0.05 (central model: %.0f)\n",
		ldphh.MaxInformation(eps, n, 0.05), float64(n)*eps)

	// Adaptive chase: start from a random pool, repeatedly query and keep
	// the apparent winners — the next round's pool depends on past answers.
	pool := rng.Perm(64)[:16]
	var winner int
	for r := 0; r < rounds; r++ {
		best, bestEst := -1, math.Inf(-1)
		for _, v := range pool {
			if est := oracle.Estimate(dom.Item(uint64(v))); est > bestEst {
				best, bestEst = v, est
			}
		}
		winner = best
		// Adaptively re-pool around the winner (depends on the data!).
		pool = pool[:0]
		for len(pool) < 16 {
			pool = append(pool, (winner+rng.IntN(17)-8+64)%64)
		}
	}

	est := oracle.Estimate(dom.Item(uint64(winner)))
	fmt.Printf("adaptively chased winner: item %d\n", winner)
	fmt.Printf("  sketch estimate: %7.0f\n", est)
	fmt.Printf("  true frequency:  %7d\n", truth[winner])
	fmt.Printf("  generalization gap: %.0f (noise scale ~%.0f — no adaptivity blow-up)\n",
		math.Abs(est-float64(truth[winner])), oracle.ErrorBound(0.5))
}
