// URL telemetry: the Chrome-style deployment the paper's introduction
// motivates — a browser fleet reports visited homepage domains under local
// differential privacy and the vendor recovers the popular ones without
// learning any individual's browsing.
//
// Domains are padded to a fixed 16-byte width (|X| = 2^128), which also
// demonstrates the protocol's indifference to enormous domains: nothing
// enumerates X.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"ldphh"
)

const itemWidth = 16

func pad(domain string) []byte {
	b := make([]byte, itemWidth)
	copy(b, domain)
	return b
}

func unpad(item []byte) string {
	return string(bytes.TrimRight(item, "\x00"))
}

func main() {
	const n = 60000
	popular := []struct {
		domain string
		frac   float64
	}{
		{"google.com", 0.28},
		{"youtube.com", 0.22},
		{"wikipedia.org", 0.05}, // below the error floor: must NOT be promised
	}

	// Build the fleet's inputs: popular domains plus a long tail of unique
	// personal sites.
	rng := rand.New(rand.NewPCG(10, 20))
	var items [][]byte
	truth := map[string]int{}
	for _, p := range popular {
		count := int(p.frac * n)
		truth[p.domain] = count
		for i := 0; i < count; i++ {
			items = append(items, pad(p.domain))
		}
	}
	for len(items) < n {
		items = append(items, pad(fmt.Sprintf("user%09d.net", rng.IntN(1<<30))))
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	hh, err := ldphh.NewHeavyHitters(ldphh.Params{
		Eps: 6, N: n, ItemBytes: itemWidth, Y: 64, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	floor := hh.Params().MinRecoverableFrequency()
	fmt.Printf("fleet size %d, |X| = 2^%d, privacy eps = %.0f\n", n, 8*itemWidth, 6.0)
	fmt.Printf("recovery floor: %.0f users (%.1f%%) — theorem 7.2 says any LDP protocol needs >= %.0f\n",
		floor, 100*floor/float64(n),
		ldphh.ErrorLowerBound(6, n, 1e38, 0.05))

	urng := rand.New(rand.NewPCG(30, 40))
	for i, item := range items {
		rep, err := hh.Report(item, i, urng)
		if err != nil {
			log.Fatal(err)
		}
		if err := hh.Absorb(rep); err != nil {
			log.Fatal(err)
		}
	}
	est, err := hh.Identify()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("recovered %d popular domains:\n", len(est))
	for _, e := range est {
		fmt.Printf("  %-24s estimated %6.0f  true %6d\n",
			unpad(e.Item), e.Count, truth[unpad(e.Item)])
	}
	for _, p := range popular {
		found := false
		for _, e := range est {
			if unpad(e.Item) == p.domain {
				found = true
			}
		}
		status := "recovered"
		if !found {
			status = "below the floor (expected)"
			if float64(truth[p.domain]) >= floor {
				status = "MISSED (unexpected)"
			}
		}
		fmt.Printf("  %-24s %s\n", p.domain, status)
	}
}
