package main

import (
	"io"
	"testing"
	"time"
)

// TestRunSmoke streams for a few seconds and checks the pipeline end to
// end: batches flow, queries answer every tick, and the dominant zipf value
// survives into the final top-k. CI runs this as the streaming smoke gate.
func TestRunSmoke(t *testing.T) {
	cfg := config{
		duration: 4 * time.Second,
		tick:     200 * time.Millisecond, // compress the 1s cadence for CI
		rate:     5000,
		eps:      16,
		windows:  4,
		k:        10,
		domain:   256,
		zipfS:    1.3,
		seed:     42,
		out:      io.Discard,
	}
	sum, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.reports < cfg.rate {
		t.Fatalf("streamed only %d reports in %v", sum.reports, cfg.duration)
	}
	if sum.queries < 5 {
		t.Fatalf("answered only %d queries, want one per tick", sum.queries)
	}
	if !sum.topFound {
		t.Errorf("dominant true value %d missing from the final top-%d", sum.topTrue, cfg.k)
	}
	if sum.recallK < 0.3 {
		t.Errorf("true top-%d recall %.0f%% — the stream pipeline is not tracking the distribution", cfg.k, 100*sum.recallK)
	}
}
