// Stream telemetry: the continuous-query deployment the streaming kind
// exists for — a device fleet reports a zipf-distributed metric indefinitely
// under a per-window LDP budget, and a monitor asks the aggregation server
// "what is hot right now" every second while ingestion keeps running.
//
// One TCP connection carries everything: mega-batch ingest and the pipelined
// top-k query command interleave on the same IngestConn, so the monitor sees
// estimates that track the live stream without ever closing the round. At
// the end the final top-k is compared against the ground truth the simulated
// fleet kept for itself.
//
// Flags:
//
//	-duration  how long to stream (default 75s)
//	-rate      reports per second (default 2000)
//	-eps       total per-user privacy budget over the stream (default 16)
//	-windows   per-user budget split w; each report spends eps/w (default 4)
//	-k         top-k size to query (default 10)
//	-domain    metric domain size (default 256)
//	-zipf-s    zipf exponent of the fleet's distribution (default 1.3)
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"os"
	"sort"
	"time"

	"ldphh"
)

type config struct {
	duration time.Duration
	tick     time.Duration
	rate     int
	eps      float64
	windows  int
	k        int
	domain   int
	zipfS    float64
	seed     uint64
	out      io.Writer
}

// summary is what a run proves: the final streaming top-k against the
// ground truth the fleet kept locally.
type summary struct {
	reports  int
	queries  int
	topTrue  uint16  // most frequent true value
	topFound bool    // topTrue present in the final streaming top-k
	recallK  float64 // fraction of the true top-k present in the final answer
}

func item(v uint16) []byte {
	b := make([]byte, 2)
	binary.BigEndian.PutUint16(b, v)
	return b
}

func run(cfg config) (summary, error) {
	var sum summary
	n := int(float64(cfg.rate) * cfg.duration.Seconds())
	newProto := func() (ldphh.Protocol, error) {
		return ldphh.New(ldphh.KindStreamHG,
			ldphh.WithEps(cfg.eps), ldphh.WithN(n), ldphh.WithItemBytes(2),
			ldphh.WithDomainSize(cfg.domain), ldphh.WithWindows(cfg.windows),
			ldphh.WithTopK(cfg.k), ldphh.WithWindowSize(n/cfg.windows+1),
			ldphh.WithSeed(cfg.seed))
	}
	device, err := newProto()
	if err != nil {
		return sum, err
	}
	agg, err := newProto()
	if err != nil {
		return sum, err
	}
	srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0")
	if err != nil {
		return sum, err
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), cfg.duration+30*time.Second)
	defer cancel()
	conn, err := ldphh.DialIngest(ctx, srv.Addr(), ldphh.KindStreamHG)
	if err != nil {
		return sum, err
	}
	defer conn.Close()

	rng := rand.New(rand.NewPCG(cfg.seed, cfg.seed^0xda3e39cb94b95bdb))
	zipf := rand.NewZipf(rng, cfg.zipfS, 1, uint64(cfg.domain-1))
	truth := make([]int, cfg.domain)
	perTick := int(float64(cfg.rate) * cfg.tick.Seconds())
	if perTick < 1 {
		perTick = 1
	}

	fmt.Fprintf(cfg.out, "streaming %v at %d reports/s: eps=%.0f over %d windows (eps/w=%.2f), domain %d, top-%d every %v\n",
		cfg.duration, cfg.rate, cfg.eps, cfg.windows, cfg.eps/float64(cfg.windows), cfg.domain, cfg.k, cfg.tick)

	batch := make([]ldphh.WireReport, 0, perTick)
	ticker := time.NewTicker(cfg.tick)
	defer ticker.Stop()
	deadline := time.Now().Add(cfg.duration)
	for user := 0; time.Now().Before(deadline); {
		<-ticker.C
		// One tick of fleet traffic, shipped as a single mega-batch.
		batch = batch[:0]
		for i := 0; i < perTick; i++ {
			v := uint16(zipf.Uint64())
			truth[v]++
			wr, err := device.Report(item(v), user, rng)
			if err != nil {
				return sum, err
			}
			batch = append(batch, wr)
			user++
		}
		if err := conn.SendBatch(ctx, batch); err != nil {
			return sum, err
		}
		sum.reports += len(batch)

		// The monitor's question, on the same pipelined connection.
		est, err := conn.QueryTopK(ctx, cfg.k)
		if err != nil {
			return sum, err
		}
		sum.queries++
		var stats ldphh.StreamStats
		if cq, ok := ldphh.AsContinuousQuerier(agg); ok {
			stats = cq.StreamStats()
		}
		fmt.Fprintf(cfg.out, "t+%2ds window %d/%d%s  %d reports  top:",
			sum.queries, stats.Window, stats.Windows, warmTag(stats.Warmup), sum.reports)
		for i, e := range est {
			if i == 5 {
				fmt.Fprintf(cfg.out, " …")
				break
			}
			fmt.Fprintf(cfg.out, " %d:%.0f", binary.BigEndian.Uint16(e.Item), e.Count)
		}
		fmt.Fprintln(cfg.out)
	}

	// Final answer vs the fleet's ground truth.
	final, err := ldphh.QueryTopKContext(ctx, srv.Addr(), cfg.k)
	if err != nil {
		return sum, err
	}
	type vc struct {
		v uint16
		c int
	}
	ranked := make([]vc, 0, cfg.domain)
	for v, c := range truth {
		ranked = append(ranked, vc{uint16(v), c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].c != ranked[j].c {
			return ranked[i].c > ranked[j].c
		}
		return ranked[i].v < ranked[j].v
	})
	inFinal := func(v uint16) bool {
		for _, e := range final {
			if binary.BigEndian.Uint16(e.Item) == v {
				return true
			}
		}
		return false
	}
	sum.topTrue = ranked[0].v
	sum.topFound = inFinal(ranked[0].v)
	kk := cfg.k
	if kk > len(ranked) {
		kk = len(ranked)
	}
	hit := 0
	fmt.Fprintf(cfg.out, "\nfinal top-%d vs ground truth:\n", kk)
	for _, r := range ranked[:kk] {
		mark := "MISS"
		if inFinal(r.v) {
			hit++
			mark = "hit"
		}
		fmt.Fprintf(cfg.out, "  value %3d  true %6d  %s\n", r.v, r.c, mark)
	}
	sum.recallK = float64(hit) / float64(kk)
	fmt.Fprintf(cfg.out, "streamed %d reports, answered %d queries, true-top-%d recall %.0f%%\n",
		sum.reports, sum.queries, kk, 100*sum.recallK)
	return sum, nil
}

func warmTag(warm bool) string {
	if warm {
		return " (warmup)"
	}
	return ""
}

func main() {
	cfg := config{tick: time.Second, out: os.Stdout}
	flag.DurationVar(&cfg.duration, "duration", 75*time.Second, "how long to stream")
	flag.IntVar(&cfg.rate, "rate", 2000, "reports per second")
	flag.Float64Var(&cfg.eps, "eps", 16, "total per-user privacy budget")
	flag.IntVar(&cfg.windows, "windows", 4, "per-user budget split w")
	flag.IntVar(&cfg.k, "k", 10, "top-k size")
	flag.IntVar(&cfg.domain, "domain", 256, "metric domain size")
	flag.Float64Var(&cfg.zipfS, "zipf-s", 1.3, "zipf exponent")
	flag.Uint64Var(&cfg.seed, "seed", 42, "public-randomness seed")
	flag.Parse()
	if _, err := run(cfg); err != nil {
		log.Fatal(err)
	}
}
