// Merge tree: a two-tier aggregation topology. Regional aggregators each
// collect a shard of the fleet's reports into their own Hashtogram sketch
// (identical public randomness); the central server merges the regional
// sketches and answers frequency queries over the whole population —
// without any aggregator ever seeing another region's raw reports.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"ldphh"
)

func main() {
	const n = 48000
	const regions = 6
	params := ldphh.HashtogramParams{Eps: 1.5, N: n, Seed: 2718}

	// One sketch per regional aggregator, identical parameters.
	regional := make([]*ldphh.Hashtogram, regions)
	for r := range regional {
		var err error
		regional[r], err = ldphh.NewHashtogram(params)
		if err != nil {
			log.Fatal(err)
		}
	}

	// The fleet: planted popular item + long tail, users spread across
	// regions round-robin.
	dom := ldphh.Domain{ItemBytes: 8}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.20, 0.10}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i, item := range ds.Items {
		region := regional[i%regions]
		if err := region.Absorb(region.Report(item, i, rng)); err != nil {
			log.Fatal(err)
		}
	}

	// Central merge: fold every regional sketch into the first.
	central := regional[0]
	for r := 1; r < regions; r++ {
		if err := central.Merge(regional[r]); err != nil {
			log.Fatal(err)
		}
	}
	central.Finalize()

	fmt.Printf("%d regions merged, %d total reports\n", regions, central.TotalReports())
	for i := 1; i <= 2; i++ {
		item := dom.Item(uint64(i))
		est, iqr := central.EstimateWithSpread(item)
		fmt.Printf("item %d: merged estimate %7.0f ± %5.0f (IQR), true %6d\n",
			i, est, iqr, ds.Count(item))
	}
	absent := dom.Item(424242)
	est, _ := central.EstimateWithSpread(absent)
	fmt.Printf("absent item: merged estimate %7.0f (should be near 0)\n", est)
}
