// Merge tree: a two-tier aggregation topology over the full
// PrivateExpanderSketch protocol. Regional aggregators each collect a shard
// of the fleet's reports into their own HeavyHitters instance (identical
// Params, so identical public randomness); each region then serializes its
// accumulated state with Snapshot, and the central aggregator folds the
// bytes in with MergeSnapshot and runs Identify once over the whole
// population — without any aggregator ever seeing another region's raw
// reports, and with the bit-identical output a single central server would
// have produced (verified at the end against a sequential replay).
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand/v2"

	"ldphh"
)

func main() {
	const n = 30000
	const regions = 6
	params := ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 2718}

	// The fleet: two planted popular items + long tail, users spread across
	// regions round-robin.
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.25, 0.15}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		log.Fatal(err)
	}

	// One aggregator per region, identical parameters. Devices derive their
	// reports from a Client built on Params alone.
	client, err := ldphh.NewClient(params)
	if err != nil {
		log.Fatal(err)
	}
	regional := make([]*ldphh.HeavyHitters, regions)
	for r := range regional {
		if regional[r], err = ldphh.NewHeavyHitters(params); err != nil {
			log.Fatal(err)
		}
	}
	rng := rand.New(rand.NewPCG(3, 4))
	reports := make([]ldphh.Report, n)
	for i, item := range ds.Items {
		if reports[i], err = client.Report(item, i, rng); err != nil {
			log.Fatal(err)
		}
		if err := regional[i%regions].Absorb(reports[i]); err != nil {
			log.Fatal(err)
		}
	}

	// Central merge: every regional aggregator ships its serialized state
	// upstream; the center absorbs the bytes. Snapshots are versioned and
	// parameter-fingerprinted — a region built from a different Seed would
	// be rejected here, not silently mis-merged.
	central, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		log.Fatal(err)
	}
	snapBytes := 0
	for r := 0; r < regions; r++ {
		snap, err := regional[r].Snapshot()
		if err != nil {
			log.Fatal(err)
		}
		snapBytes += len(snap)
		if err := central.MergeSnapshot(snap); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d regions merged (%d snapshot bytes), %d total reports\n",
		regions, snapBytes, central.TotalReports())

	est, err := central.Identify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("central aggregator identified %d heavy hitters:\n", len(est))
	for i, e := range est {
		if i >= 5 {
			break
		}
		fmt.Printf("  %x  est=%7.0f  true=%6d\n", e.Item, e.Count, ds.Count(e.Item))
	}

	// The merge determinism contract: the tree produced exactly what one
	// aggregator ingesting everything would have.
	replay, err := ldphh.NewHeavyHitters(params)
	if err != nil {
		log.Fatal(err)
	}
	for _, rep := range reports {
		if err := replay.Absorb(rep); err != nil {
			log.Fatal(err)
		}
	}
	want, err := replay.Identify()
	if err != nil {
		log.Fatal(err)
	}
	if len(est) != len(want) {
		log.Fatalf("merged round identified %d items, sequential replay %d", len(est), len(want))
	}
	for i := range est {
		if !bytes.Equal(est[i].Item, want[i].Item) || est[i].Count != want[i].Count {
			log.Fatalf("rank %d diverged from the sequential replay", i)
		}
	}
	fmt.Println("merged identification is bit-identical to the sequential replay")
}
