package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns executes the example round end to end (at a reduced
// population in -short mode) and checks it reports identified heavy
// hitters — the smoke gate that keeps the README's first example working.
func TestQuickstartRuns(t *testing.T) {
	n := 30000
	if testing.Short() {
		n = 12000
	}
	var buf bytes.Buffer
	if err := run(&buf, n, 7); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "protocol will recover items with frequency >=") {
		t.Fatalf("missing recovery-floor line:\n%s", out)
	}
	if !strings.Contains(out, "identified") {
		t.Fatalf("missing identification line:\n%s", out)
	}
	if strings.Contains(out, "identified 0 heavy hitters") {
		t.Fatalf("seeded quickstart identified nothing:\n%s", out)
	}
}
