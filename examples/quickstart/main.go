// Quickstart: the minimal end-to-end PrivateExpanderSketch round through the
// public API — plant two heavy items among 30k simulated users, have every
// user produce its single ε-LDP message, aggregate, identify.
package main

import (
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"os"

	"ldphh"
)

func main() {
	if err := run(os.Stdout, 30000, 7); err != nil {
		log.Fatal(err)
	}
}

// run executes the whole round for n users with the given public-randomness
// seed, writing the report to w; main and the example's smoke test share it.
func run(w io.Writer, n int, seed uint64) error {
	dom := ldphh.Domain{ItemBytes: 4}

	// Synthetic population: 25% hold item 1, 18% hold item 2, the rest are
	// unique random values (the long tail).
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.25, 0.18}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		return err
	}

	// Server side: one protocol instance; its Seed fixes the public
	// randomness every user shares.
	hh, err := ldphh.NewHeavyHitters(ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "protocol will recover items with frequency >= %.0f (%.1f%% of n)\n",
		hh.Params().MinRecoverableFrequency(),
		100*hh.Params().MinRecoverableFrequency()/float64(n))

	// User side: each user computes one small randomized message locally
	// — this is the only thing that ever leaves a device.
	rng := rand.New(rand.NewPCG(3, 4))
	for i, item := range ds.Items {
		rep, err := hh.Report(item, i, rng)
		if err != nil {
			return err
		}
		if err := hh.Absorb(rep); err != nil {
			return err
		}
	}

	// Server side: identify the heavy hitters with frequency estimates.
	est, err := hh.Identify()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "identified %d heavy hitters:\n", len(est))
	for _, e := range est {
		fmt.Fprintf(w, "  item %x  estimated %6.0f  true %6d\n",
			e.Item, e.Count, ds.Count(e.Item))
	}
	return nil
}
