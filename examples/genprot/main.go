// GenProt: purify an approximate (ε, δ)-LDP randomizer into a pure 10ε-LDP
// protocol (Section 6 of the paper) and watch three things:
//
//  1. the wrapped randomizer genuinely violates pure LDP (infinite ratio);
//  2. the purified report distribution satisfies e^{10ε} *exactly*,
//     verified by enumeration, while costing only ⌈log₂T⌉ bits per user;
//  3. aggregate counting accuracy survives the transformation.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"ldphh"
)

func main() {
	const eps = 0.2
	const delta = 1e-4
	const n = 40000

	leaky := ldphh.NewLeakyRR(eps, delta)
	fmt.Printf("wrapped randomizer: (%.1f, %g)-LDP; pure privacy ratio = %v (broken)\n",
		eps, delta, ldphh.MaxPrivacyRatio(leaky))

	T := ldphh.GenProtDefaultT(eps, n, 0.05)
	fmt.Printf("GenProt T = %d reference samples -> report is %d bits per user\n",
		T, bits(T))

	pub := rand.New(rand.NewPCG(1, 2))
	usr := rand.New(rand.NewPCG(3, 4))

	// One transform per user (step 1 of algorithm GenProt): fresh public
	// reference strings y_{i,t} ~ A(⊥).
	trueOnes := 12000
	ones, zeros := 0, 0
	worstRatio := 0.0
	for i := 0; i < n; i++ {
		tr, err := ldphh.NewGenProt(ldphh.GenProtParams{Eps: eps, T: T}, leaky, pub)
		if err != nil {
			log.Fatal(err)
		}
		if i < 50 { // exact privacy audit on a sample of users
			if r := tr.MaxReportRatio(); r > worstRatio {
				worstRatio = r
			}
		}
		x := uint64(0)
		if i < trueOnes {
			x = 1
		}
		switch tr.Decode(tr.Report(x, usr)) {
		case 1:
			ones++
		case 0:
			zeros++
		}
	}
	fmt.Printf("audited worst report-privacy ratio: %.4f (Theorem 6.1 bound e^{10ε} = %.4f)\n",
		worstRatio, math.Exp(10*eps))

	pKeep := math.Exp(eps) / (math.Exp(eps) + 1)
	q := 1 - pKeep
	est := (float64(ones) - float64(ones+zeros)*q) / (pKeep - q)
	fmt.Printf("counting through the purified protocol: estimated %.0f ones, true %d\n",
		est, trueOnes)
}

func bits(t int) int {
	b := 0
	for v := t - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}
