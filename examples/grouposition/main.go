// Grouposition: Section 4 of the paper — in the local model, a group of k
// users enjoys privacy degradation ≈ √k·ε instead of the central model's
// k·ε. This example simulates the actual privacy-loss random variable for
// randomized response and plots (textually) the measured loss quantiles
// against both bounds, then prints the max-information consequence
// (Theorem 4.5) and the composition view of Section 5.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"ldphh"
	"ldphh/internal/grouposition"
)

func main() {
	const eps = 0.2
	const delta = 0.05

	rng := rand.New(rand.NewPCG(1, 2))
	rows, err := grouposition.Experiment(eps, []int{5, 20, 80, 320, 1280}, delta, 30000, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("privacy loss of a k-user group under ε=%.1f randomized response\n", eps)
	fmt.Printf("%6s %10s %10s %10s   %s\n", "k", "measured", "√k-bound", "central", "(bar = measured/central)")
	for _, r := range rows {
		frac := r.MeasuredQuant / r.CentralBound
		bar := strings.Repeat("#", int(frac*40))
		fmt.Printf("%6d %10.2f %10.2f %10.2f   %s\n",
			r.K, r.MeasuredQuant, r.AdvancedBound, r.CentralBound, bar)
	}

	fmt.Println("\nmax-information (Theorem 4.5), eps=0.1:")
	for _, n := range []int{1000, 100000} {
		fmt.Printf("  n=%6d: LDP bound %7.1f nats vs central nε = %7.1f nats\n",
			n, ldphh.MaxInformation(0.1, n, 0.01), float64(n)*0.1)
	}

	fmt.Println("\ncomposition view (Theorem 5.1): M̃ ≈ k-fold RR but purely private:")
	m, err := ldphh.NewMTilde(1024, 0.002, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  k=1024, ε=0.002: ε̃ = %.3f vs basic composition kε = %.3f; TV(M̃, M) = %.2e\n",
		m.TildeEpsilon(), m.BasicCompositionEpsilon(), m.ExactTV())
}
