// Word frequency: the iOS-style "learning new words" deployment [33] — a
// fleet of keyboards reports typed words under LDP; the vendor discovers
// which new words are trending. The workload is Zipf-shaped, as natural
// language is, and the example reports recall over every word the
// configuration promises to recover, plus frequency accuracy against a
// Hashtogram run as a standalone frequency oracle on the same population.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"math/rand/v2"

	"ldphh"
)

const wordWidth = 8

var lexicon = []string{
	"rizz", "skibidi", "delulu", "sus", "yeet", "vibe", "stan", "simp",
	"bet", "cap", "drip", "flex", "ghost", "gyat", "mid", "npc",
	"ohio", "ratio", "slay", "tea", "bussin", "sheesh", "fam", "lit",
}

func pad(w string) []byte {
	b := make([]byte, wordWidth)
	copy(b, w)
	return b
}

func main() {
	const n = 60000
	dom := ldphh.Domain{ItemBytes: wordWidth}
	_ = dom

	// Zipf-shaped word popularity over the lexicon.
	rng := rand.New(rand.NewPCG(5, 6))
	zipfWeights := make([]float64, len(lexicon))
	total := 0.0
	for i := range zipfWeights {
		zipfWeights[i] = 1 / math.Pow(float64(i+1), 1.2)
		total += zipfWeights[i]
	}
	var items [][]byte
	truth := map[string]int{}
	for i, w := range lexicon {
		count := int(float64(n) * zipfWeights[i] / total)
		truth[w] = count
		for j := 0; j < count; j++ {
			items = append(items, pad(w))
		}
	}
	for len(items) < n {
		items = append(items, pad(fmt.Sprintf("u%07d", rng.IntN(1<<24))))
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })

	// Heavy-hitters protocol.
	hh, err := ldphh.NewHeavyHitters(ldphh.Params{
		Eps: 5, N: n, ItemBytes: wordWidth, Y: 128, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Standalone frequency oracle collected in a second, independent round
	// (its own ε budget), for comparison of point estimates against the
	// heavy-hitters protocol (Definition 3.2 reduction).
	oracle, err := ldphh.NewHashtogram(ldphh.HashtogramParams{Eps: 5, N: n, Seed: 12})
	if err != nil {
		log.Fatal(err)
	}

	urng := rand.New(rand.NewPCG(7, 8))
	for i, item := range items {
		rep, err := hh.Report(item, i, urng)
		if err != nil {
			log.Fatal(err)
		}
		if err := hh.Absorb(rep); err != nil {
			log.Fatal(err)
		}
		if err := oracle.Absorb(oracle.Report(item, i, urng)); err != nil {
			log.Fatal(err)
		}
	}
	est, err := hh.Identify()
	if err != nil {
		log.Fatal(err)
	}
	oracle.Finalize()

	floor := hh.Params().MinRecoverableFrequency()
	fmt.Printf("keyboard fleet: %d users, %d trending words planted, recovery floor %.0f\n",
		n, len(lexicon), floor)
	fmt.Printf("%-10s %9s %9s %9s\n", "word", "true", "hh-est", "oracle")
	promised, recovered := 0, 0
	for i, w := range lexicon {
		if i >= 8 {
			break
		}
		var hhEst float64
		found := false
		for _, e := range est {
			if string(bytes.TrimRight(e.Item, "\x00")) == w {
				hhEst = e.Count
				found = true
			}
		}
		mark := ""
		if float64(truth[w]) >= floor {
			promised++
			if found {
				recovered++
			} else {
				mark = "  <-- MISSED"
			}
		}
		fmt.Printf("%-10s %9d %9.0f %9.0f%s\n", w, truth[w], hhEst, oracle.Estimate(pad(w)), mark)
	}
	fmt.Printf("recall over promised words: %d/%d\n", recovered, promised)
}
