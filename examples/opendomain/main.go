// Open-domain discovery: the deployment the interactive kinds exist for —
// a device fleet holds strings from a domain nobody can enumerate and no
// product team has a candidate list for, and the server discovers the
// popular ones anyway, one prefix level per round.
//
// The round loop runs over real TCP against the generic aggregation
// server: the driver fetches each round's candidate-prefix broadcast
// (RequestRound), installs it on the device fleet, the round's user group
// reports against it — every user reports exactly once across the whole
// discovery, so the per-user budget stays ε — and AdvanceRound commits the
// transition server-side. At the end the discovered top-k is scored
// against the ground truth the simulated fleet kept for itself.
//
// Flags:
//
//	-mode     pem | fedtrie (default pem)
//	-n        fleet size (default 30000)
//	-eps      per-user privacy budget (default 4)
//	-k        discovery target size (default 8)
//	-support  true zipf support size (default 128)
//	-zipf-s   zipf exponent (default 1.5)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand/v2"
	"os"

	"ldphh"
)

type config struct {
	mode      string
	n         int
	eps       float64
	k         int
	itemBytes int
	support   int
	zipfS     float64
	seed      uint64
	out       io.Writer
}

// summary is what a run proves: the multi-round discovery's final answer
// against exact ground truth.
type summary struct {
	rounds   int
	reports  int
	topFound bool    // most frequent true item present in the answer
	recallK  float64 // fraction of the true top-k discovered
}

func run(cfg config) (summary, error) {
	var sum summary
	kind, err := ldphh.ParseKind(cfg.mode)
	if err != nil {
		return sum, err
	}
	dom := ldphh.Domain{ItemBytes: cfg.itemBytes}
	ds, err := ldphh.ZipfDataset(dom, cfg.n, cfg.support, cfg.zipfS, rand.New(rand.NewPCG(cfg.seed, 2)))
	if err != nil {
		return sum, err
	}

	newProto := func() (ldphh.Protocol, error) {
		return ldphh.New(kind,
			ldphh.WithEps(cfg.eps), ldphh.WithN(cfg.n),
			ldphh.WithItemBytes(cfg.itemBytes), ldphh.WithTopK(cfg.k),
			ldphh.WithSeed(cfg.seed))
	}
	device, err := newProto()
	if err != nil {
		return sum, err
	}
	devIt, ok := ldphh.AsInteractive(device)
	if !ok {
		return sum, fmt.Errorf("%s is not an interactive kind", cfg.mode)
	}
	agg, err := newProto()
	if err != nil {
		return sum, err
	}
	srv, err := ldphh.NewAggregationServer(agg, "127.0.0.1:0")
	if err != nil {
		return sum, err
	}
	defer srv.Close()
	fmt.Fprintf(cfg.out, "aggregation server (%s) on %s; fleet of %d devices, no candidate list\n",
		kind, srv.Addr(), cfg.n)

	ctx := context.Background()
	rs, err := ldphh.RequestRound(srv.Addr())
	if err != nil {
		return sum, err
	}
	for !rs.Done {
		if err := devIt.SetRoundState(rs); err != nil {
			return sum, err
		}
		var batch []ldphh.WireReport
		for i, x := range ds.Items {
			wr, err := device.Report(x, i, ldphh.RoundRand(cfg.seed, rs.Round, i))
			if errors.Is(err, ldphh.ErrNotInRound) {
				continue // this user's group reports in another round
			}
			if err != nil {
				return sum, err
			}
			batch = append(batch, wr)
		}
		if err := ldphh.SendWireReports(ctx, srv.Addr(), batch); err != nil {
			return sum, err
		}
		sum.reports += len(batch)
		fmt.Fprintf(cfg.out, "round %d/%d: %4d candidate prefixes of %2d bits, group of %d reported\n",
			rs.Round+1, rs.Rounds, len(rs.Candidates), rs.PrefixBits, len(batch))
		if rs, err = ldphh.AdvanceRound(srv.Addr()); err != nil {
			return sum, err
		}
		sum.rounds++
	}

	est, err := ldphh.RequestIdentifyContext(ctx, srv.Addr())
	if err != nil {
		return sum, err
	}
	trueTop := ds.TopK(cfg.k)
	found := make(map[string]bool, len(est))
	for _, e := range est {
		found[string(e.Item)] = true
	}
	hits := 0
	for _, tc := range trueTop {
		if found[string(tc.Item)] {
			hits++
		}
	}
	sum.recallK = float64(hits) / float64(len(trueTop))
	sum.topFound = len(trueTop) > 0 && found[string(trueTop[0].Item)]

	fmt.Fprintf(cfg.out, "discovered %d items after %d rounds (%d reports, %d wire bytes/user):\n",
		len(est), sum.rounds, sum.reports, agg.BytesPerReport())
	for i, e := range est {
		if i >= cfg.k {
			break
		}
		fmt.Fprintf(cfg.out, "  %x  est=%8.0f  true=%d\n", e.Item, e.Count, ds.Count(e.Item))
	}
	fmt.Fprintf(cfg.out, "true top-%d recall: %.0f%%\n", cfg.k, 100*sum.recallK)
	return sum, nil
}

func main() {
	mode := flag.String("mode", "pem", "interactive kind: pem | fedtrie")
	n := flag.Int("n", 30000, "fleet size")
	eps := flag.Float64("eps", 4, "per-user privacy budget")
	k := flag.Int("k", 8, "discovery target size")
	itemBytes := flag.Int("itembytes", 3, "item width in bytes")
	support := flag.Int("support", 128, "true zipf support size")
	zipfS := flag.Float64("zipf-s", 1.5, "zipf exponent")
	seed := flag.Uint64("seed", 1, "seed for all randomness")
	flag.Parse()
	if _, err := run(config{
		mode: *mode, n: *n, eps: *eps, k: *k, itemBytes: *itemBytes,
		support: *support, zipfS: *zipfS, seed: *seed, out: os.Stdout,
	}); err != nil {
		log.Fatal(err)
	}
}
