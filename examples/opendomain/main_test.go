package main

import (
	"io"
	"testing"
)

// TestRunSmoke runs both interactive kinds end to end over TCP at a CI
// size: the round loop must terminate, every user must report exactly
// once, and the dominant true item must be discovered with no candidate
// list anywhere. CI runs this as the interactive smoke gate under -race.
func TestRunSmoke(t *testing.T) {
	for _, mode := range []string{"pem", "fedtrie"} {
		t.Run(mode, func(t *testing.T) {
			cfg := config{
				mode: mode, n: 20000, eps: 4, k: 8, itemBytes: 2,
				support: 64, zipfS: 1.5, seed: 42, out: io.Discard,
			}
			sum, err := run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if sum.rounds < 2 {
				t.Fatalf("discovery took %d rounds — not an interactive run", sum.rounds)
			}
			if sum.reports != cfg.n {
				t.Fatalf("%d reports for %d users — the group partition must cover every user exactly once", sum.reports, cfg.n)
			}
			if !sum.topFound {
				t.Error("dominant true item missing from the discovered set")
			}
			if sum.recallK < 0.3 {
				t.Errorf("true top-%d recall %.0f%% — discovery is not tracking the distribution", cfg.k, 100*sum.recallK)
			}
		})
	}
}
