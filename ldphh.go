package ldphh

import (
	"context"
	"math/rand/v2"
	"time"

	"ldphh/internal/baseline"
	"ldphh/internal/composition"
	"ldphh/internal/core"
	"ldphh/internal/freqoracle"
	"ldphh/internal/genprot"
	"ldphh/internal/grouposition"
	"ldphh/internal/interactive"
	"ldphh/internal/ldp"
	"ldphh/internal/lowerbound"
	"ldphh/internal/proto"
	"ldphh/internal/protocol"
	"ldphh/internal/workload"
)

// The unified protocol surface (see DESIGN.md §2): every protocol in the
// repository — PrivateExpanderSketch, SmallDomain, the two frequency
// oracles and the three Table 1 baselines — satisfies Reporter (device
// side) and Aggregator (server side) over self-describing WireReports, so
// one generic TCP server, one benchmark harness and one merge tree drive
// them all. Construct instances with New; detect snapshot/merge support
// with AsMergeable.
type (
	// Reporter is the device side: one call per user, one WireReport out.
	Reporter = proto.Reporter
	// Aggregator is the server side: absorb wire reports, identify once.
	Aggregator = proto.Aggregator
	// Protocol is a full instance usable on either side (what New returns).
	Protocol = proto.Protocol
	// Mergeable is the optional snapshot/merge capability behind fan-in
	// trees.
	Mergeable = proto.Mergeable
	// WireReport is one user's self-describing serialized message:
	// [protocol ID][codec version][payload].
	WireReport = proto.WireReport
	// Calibrated is the optional capability of protocols that can state
	// their recovery floor (benchmarks score recall against it). Every
	// kind New constructs implements it.
	Calibrated = proto.Calibrated
	// ContinuousQuerier is the optional capability of streaming
	// aggregators (KindStreamHG): answer top-k over the live structure
	// without retiring the round.
	ContinuousQuerier = proto.ContinuousQuerier
	// StreamStats describes a streaming aggregator's position: current
	// window, budget split, warmup phase, eviction churn.
	StreamStats = proto.StreamStats
	// Interactive is the optional capability of multi-round aggregators
	// (KindPEM, KindFedTrie): broadcast the open round's candidate set,
	// install a broadcast on a device fleet, and commit round transitions.
	Interactive = proto.Interactive
	// RoundState is one round's broadcast: the open round index, the
	// candidate prefixes the round's user group reports against, and the
	// terminal Done flag.
	RoundState = proto.RoundState
)

// AsMergeable reports whether an aggregator supports snapshot/merge
// fan-in, returning the capability view when it does.
func AsMergeable(a Aggregator) (Mergeable, bool) { return proto.AsMergeable(a) }

// AsContinuousQuerier reports whether an aggregator answers continuous
// top-k queries while ingestion runs, returning the capability view when it
// does (KindStreamHG aggregators do).
func AsContinuousQuerier(a Aggregator) (ContinuousQuerier, bool) {
	return proto.AsContinuousQuerier(a)
}

// AsInteractive reports whether an aggregator runs a multi-round protocol,
// returning the capability view when it does (KindPEM and KindFedTrie
// aggregators do).
func AsInteractive(a Aggregator) (Interactive, bool) { return proto.AsInteractive(a) }

// ErrNotInRound is returned by an interactive kind's Report for a user
// whose group is not assigned to the open round; the user reports in their
// own round and nowhere else, which is what keeps the per-user budget at ε
// across the whole discovery.
var ErrNotInRound = interactive.ErrNotInRound

// RoundRand returns the deterministic per-(round, user) device generator
// for the interactive kinds: replaying a fleet at any concurrency with
// these generators produces bit-identical reports.
func RoundRand(seed uint64, round, userIdx int) *rand.Rand {
	return interactive.RoundRand(seed, round, userIdx)
}

// Params configures the PrivateExpanderSketch heavy-hitters protocol; see
// core.Params for field documentation. Zero values derive the paper's
// defaults.
type Params = core.Params

// Report is one user's single ε-LDP message.
type Report = core.Report

// Estimate is one identified item with its estimated multiplicity — the
// one estimate type every protocol returns (core.Estimate and
// baseline.Estimate are the same type).
type Estimate = core.Estimate

// HeavyHitters is the PrivateExpanderSketch protocol instance
// (Theorem 3.13).
type HeavyHitters = core.Protocol

// NewHeavyHitters constructs the protocol; all public randomness derives
// from params.Seed.
func NewHeavyHitters(params Params) (*HeavyHitters, error) {
	return core.New(params)
}

// Client is the device-side half of the protocol, constructed from Params
// alone (no server state needed).
type Client = core.Client

// NewClient derives the client side deterministically from params.
func NewClient(params Params) (*Client, error) {
	return core.NewClient(params)
}

// FilterHeavyHitters reduces an Identify output to the Definition 3.1 view:
// items with estimate >= delta, truncated to the O(n/delta) list-size bound.
func FilterHeavyHitters(est []Estimate, n int, delta float64) ([]Estimate, error) {
	return core.HeavyHitters(est, n, delta)
}

// SmallDomain is the enumerable-domain protocol for the n > |X| regime
// (paper's remark after Theorem 3.13).
type SmallDomain = core.SmallDomain

// NewSmallDomain constructs the enumerable-domain protocol.
func NewSmallDomain(eps float64, itemBytes, domainSize int) (*SmallDomain, error) {
	return core.NewSmallDomain(eps, itemBytes, domainSize)
}

// Frequency-oracle surface (Theorems 3.7 and 3.8).
type (
	// Hashtogram is the large-domain frequency oracle of Theorem 3.7.
	Hashtogram = freqoracle.Hashtogram
	// HashtogramParams configures Hashtogram.
	HashtogramParams = freqoracle.HashtogramParams
	// DirectHistogram is the small-domain oracle of Theorem 3.8.
	DirectHistogram = freqoracle.DirectHistogram
	// FrequencyOracle is the uniform experiment-facing oracle interface.
	FrequencyOracle = freqoracle.Oracle
)

// NewHashtogram constructs the Theorem 3.7 oracle.
func NewHashtogram(params HashtogramParams) (*Hashtogram, error) {
	return freqoracle.NewHashtogram(params)
}

// NewDirectHistogram constructs the Theorem 3.8 oracle over an explicit
// domain.
func NewDirectHistogram(eps float64, domain int) (*DirectHistogram, error) {
	return freqoracle.NewDirectHistogram(eps, domain)
}

// Baseline protocols for the Table 1 comparison.
type (
	// Bitstogram is the Bassily-Nissim-Stemmer-Thakurta (NIPS 2017) protocol.
	Bitstogram = baseline.Bitstogram
	// BitstogramParams configures Bitstogram.
	BitstogramParams = baseline.BitstogramParams
	// TreeHist is the prefix-tree protocol from the same paper.
	TreeHist = baseline.TreeHist
	// TreeHistParams configures TreeHist.
	TreeHistParams = baseline.TreeHistParams
	// BassilySmith is the STOC 2015 style succinct-histogram baseline.
	BassilySmith = baseline.BassilySmith
	// BassilySmithParams configures BassilySmith.
	BassilySmithParams = baseline.BassilySmithParams
)

// NewTreeHist constructs the prefix-tree baseline.
func NewTreeHist(params TreeHistParams) (*TreeHist, error) {
	return baseline.NewTreeHist(params)
}

// NewBitstogram constructs the [3] baseline.
func NewBitstogram(params BitstogramParams) (*Bitstogram, error) {
	return baseline.NewBitstogram(params)
}

// NewBassilySmith constructs the [4] baseline.
func NewBassilySmith(params BassilySmithParams) (*BassilySmith, error) {
	return baseline.NewBassilySmith(params)
}

// Local randomizers with exactly evaluable output distributions.
type (
	// Randomizer is a discrete local randomizer with an evaluable output law.
	Randomizer = ldp.Randomizer
	// BinaryRR is ε-randomized response on a bit.
	BinaryRR = ldp.BinaryRR
	// KaryRR is generalized randomized response over [k].
	KaryRR = ldp.KaryRR
	// RAPPOR is basic one-time RAPPOR (the Chrome deployment).
	RAPPOR = ldp.RAPPOR
	// LeakyRR is a genuinely (ε,δ)-LDP randomizer for GenProt demos.
	LeakyRR = ldp.LeakyRR
)

// NewBinaryRR constructs binary randomized response.
func NewBinaryRR(eps float64) BinaryRR { return ldp.NewBinaryRR(eps) }

// NewKaryRR constructs k-ary randomized response.
func NewKaryRR(eps float64, k uint64) KaryRR { return ldp.NewKaryRR(eps, k) }

// NewLeakyRR constructs the (ε,δ)-LDP leaky randomizer.
func NewLeakyRR(eps, delta float64) LeakyRR { return ldp.NewLeakyRR(eps, delta) }

// MaxPrivacyRatio exhaustively verifies Definition 1.1 for a randomizer.
func MaxPrivacyRatio(r Randomizer) float64 { return ldp.MaxPrivacyRatio(r) }

// Section 4: advanced grouposition and max-information.

// AdvancedGroupEpsilon is Theorem 4.2: ε' = kε²/2 + ε·sqrt(2k·ln(1/δ)).
func AdvancedGroupEpsilon(eps float64, k int, delta float64) float64 {
	return grouposition.AdvancedGroupEpsilon(eps, k, delta)
}

// CentralGroupEpsilon is the central-model group privacy kε.
func CentralGroupEpsilon(eps float64, k int) float64 {
	return grouposition.CentralGroupEpsilon(eps, k)
}

// MaxInformation is Theorem 4.5's β-approximate max-information bound.
func MaxInformation(eps float64, n int, beta float64) float64 {
	return grouposition.MaxInformation(eps, n, beta)
}

// Section 5: composition for randomized response.

// MTilde is the Theorem 5.1 algorithm.
type MTilde = composition.MTilde

// NewMTilde constructs M̃ for k-fold ε-randomized response at closeness β.
func NewMTilde(k int, eps, beta float64) (*MTilde, error) {
	return composition.New(k, eps, beta)
}

// Section 6: GenProt.
type (
	// GenProt is the per-user purification transform of Theorem 6.1.
	GenProt = genprot.Transform
	// GenProtParams configures GenProt.
	GenProtParams = genprot.Params
)

// NewGenProt wraps an (ε,δ)-LDP randomizer into the pure 10ε-LDP report
// protocol; public reference samples are drawn from publicRng.
func NewGenProt(p GenProtParams, r Randomizer, publicRng *rand.Rand) (*GenProt, error) {
	return genprot.New(p, r, publicRng)
}

// GenProtDefaultT returns the Theorem 6.1 recommended reference-sample count.
func GenProtDefaultT(eps float64, n int, beta float64) int {
	return genprot.DefaultT(eps, n, beta)
}

// Section 7: the lower bound.

// ErrorLowerBound is Theorem 7.2's Δ ≥ (1/ε)·sqrt(n·ln(|X|/β)).
func ErrorLowerBound(eps float64, n int, domainSize, beta float64) float64 {
	return lowerbound.ErrorLowerBound(eps, n, domainSize, beta)
}

// Workloads and transport.
type (
	// Domain is a fixed-width byte-string universe.
	Domain = workload.Domain
	// Dataset is a concrete population with exact ground truth.
	Dataset = workload.Dataset
	// Server aggregates reports over TCP.
	Server = protocol.Server
)

// PlantedDataset builds n users with the given heavy-hitter fractions.
func PlantedDataset(d Domain, n int, fractions []float64, rng *rand.Rand) (*Dataset, error) {
	return workload.Planted(d, n, fractions, rng)
}

// ZipfDataset builds n users with Zipf(s) popularity over the support.
func ZipfDataset(d Domain, n, support int, s float64, rng *rand.Rand) (*Dataset, error) {
	return workload.Zipf(d, n, support, s, rng)
}

// ServerOption configures durability and observability on the aggregation
// servers: see WithCheckpointDir, WithCheckpointInterval,
// WithCheckpointEvery, WithCheckpointRetain and WithMetricsAddr.
type ServerOption = protocol.ServerOption

// ServerMetrics is the operability counter surface Server.Metrics exposes.
type ServerMetrics = protocol.Metrics

// WithCheckpointDir enables durable checkpoints in dir: the newest valid
// checkpoint on disk is restored into the aggregator before the server
// accepts its first connection (torn files fall back to the previous valid
// one; a parameter-fingerprint mismatch fails startup loudly), the state
// is persisted periodically while the round runs, and a graceful shutdown
// writes a final checkpoint. The aggregator must be Mergeable.
func WithCheckpointDir(dir string) ServerOption { return protocol.WithCheckpointDir(dir) }

// WithCheckpointInterval sets the periodic checkpoint cadence (default
// 30s; <= 0 leaves only ack-coupled and shutdown checkpoints).
func WithCheckpointInterval(d time.Duration) ServerOption {
	return protocol.WithCheckpointInterval(d)
}

// WithCheckpointEvery checkpoints synchronously before acknowledging any
// report command once n reports have accumulated since the last
// checkpoint — an acknowledged batch is on disk before the sender retires
// it, so a crash loses at most the unacknowledged window.
func WithCheckpointEvery(n int) ServerOption { return protocol.WithCheckpointEvery(n) }

// WithCheckpointRetain keeps the newest n checkpoint files (default 3,
// minimum 2).
func WithCheckpointRetain(n int) ServerOption { return protocol.WithCheckpointRetain(n) }

// WithMetricsAddr starts the HTTP operability sidecar on addr: /healthz
// for probes, /metrics for Prometheus scrapes.
func WithMetricsAddr(addr string) ServerOption { return protocol.WithMetricsAddr(addr) }

// NewServer starts a TCP aggregation server for one PrivateExpanderSketch
// collection round.
func NewServer(params Params, addr string, opts ...ServerOption) (*Server, error) {
	return protocol.NewServer(params, addr, opts...)
}

// NewAggregationServer starts a TCP aggregation server around any
// Aggregator — every protocol kind New constructs plugs into the same
// generic server, which negotiates the protocol ID at connection time.
func NewAggregationServer(agg Aggregator, addr string, opts ...ServerOption) (*Server, error) {
	return protocol.NewGenericServer(agg, addr, opts...)
}

// SendReports streams reports to a server and waits for its acknowledgment.
func SendReports(addr string, reports []Report) error {
	return protocol.SendReports(addr, reports)
}

// SendReportsContext is SendReports with deadline/cancellation propagation:
// the context's deadline bounds the whole delivery, and cancellation
// interrupts blocked I/O immediately.
func SendReportsContext(ctx context.Context, addr string, reports []Report) error {
	return protocol.SendReportsContext(ctx, addr, reports)
}

// SendWireReports delivers pre-encoded wire reports of any protocol to a
// server (all reports must carry one protocol ID). Delivery uses the
// mega-batch wire framing — one length-prefixed command, no per-frame
// overhead, no EOF handshake — and the absorbed state is bit-identical to
// the legacy stream framing. For repeated sends, DialIngest amortizes the
// connection itself.
func SendWireReports(ctx context.Context, addr string, reports []WireReport) error {
	return protocol.SendWireBatch(ctx, addr, reports)
}

// IngestConn is a persistent ingest session: one TCP connection carrying
// any number of mega-batch report commands, so a fleet's worth of reports
// pays one dial. Not safe for concurrent use; open one per sender.
type IngestConn = protocol.IngestConn

// DialIngest opens an ingest session to an aggregation server for the
// given protocol kind. Each SendBatch/SendEncoded call on the session
// delivers one mega-batch and waits for the server's acknowledgment.
func DialIngest(ctx context.Context, addr string, kind Kind) (*IngestConn, error) {
	return protocol.DialIngest(ctx, addr, byte(kind))
}

// RequestIdentify asks a server to identify and returns the estimates.
func RequestIdentify(addr string) ([]Estimate, error) {
	return protocol.RequestIdentify(addr)
}

// RequestIdentifyContext is RequestIdentify with deadline/cancellation
// propagation: a wedged or slow server cannot block the caller past the
// context's deadline.
func RequestIdentifyContext(ctx context.Context, addr string) ([]Estimate, error) {
	return protocol.RequestIdentifyContext(ctx, addr)
}

// QueryTopK asks a streaming aggregation server (KindStreamHG) for its
// current top-k heavy hitters without retiring the round; k <= 0 asks for
// the server's configured answer size. Batch-protocol servers reject the
// query.
func QueryTopK(addr string, k int) ([]Estimate, error) {
	return protocol.QueryTopK(addr, k)
}

// QueryTopKContext is QueryTopK with deadline/cancellation propagation.
func QueryTopKContext(ctx context.Context, addr string, k int) ([]Estimate, error) {
	return protocol.QueryTopKContext(ctx, addr, k)
}

// RequestRound asks an interactive aggregation server (KindPEM,
// KindFedTrie) for the open round's broadcast state — the candidate-prefix
// set the round's user group reports against. Single-round servers reject
// the command.
func RequestRound(addr string) (RoundState, error) {
	return protocol.RequestRound(addr)
}

// RequestRoundContext is RequestRound with deadline/cancellation
// propagation.
func RequestRoundContext(ctx context.Context, addr string) (RoundState, error) {
	return protocol.RequestRoundContext(ctx, addr)
}

// AdvanceRound asks an interactive aggregation server to finalize the open
// round — prune the candidate tally, extend the survivors — and open the
// next one, returning the new broadcast (Done once the final round
// committed). On a checkpointing server the transition is durable before
// the reply arrives.
func AdvanceRound(addr string) (RoundState, error) {
	return protocol.AdvanceRound(addr)
}

// AdvanceRoundContext is AdvanceRound with deadline/cancellation
// propagation.
func AdvanceRoundContext(ctx context.Context, addr string) (RoundState, error) {
	return protocol.AdvanceRoundContext(ctx, addr)
}

// Multi-aggregator trees. HeavyHitters state is a linear accumulator, so
// aggregation distributes: leaf aggregators ingest report shards
// independently, serialize their accumulated state with
// HeavyHitters.Snapshot, and a parent folds the bytes in with
// HeavyHitters.MergeSnapshot (or absorbs a sibling in process with
// MergeFrom). Snapshots are versioned and parameter-fingerprinted: they
// only load into a protocol built from the same Params (same Seed, same
// sketch geometry), and the merged root identifies the bit-identical
// heavy-hitter list a single aggregator would have produced. The two
// functions below run the same fan-in over TCP against NewServer instances.

// RequestSnapshot asks an aggregation server for its serialized accumulated
// state (a leaf checkpoint, ready for a parent's MergeSnapshot).
func RequestSnapshot(addr string) ([]byte, error) {
	return protocol.RequestSnapshot(addr)
}

// RequestSnapshotContext is RequestSnapshot with deadline/cancellation
// propagation.
func RequestSnapshotContext(ctx context.Context, addr string) ([]byte, error) {
	return protocol.RequestSnapshotContext(ctx, addr)
}

// PushSnapshot ships a leaf snapshot to a parent aggregation server, which
// merges it into its own state and acknowledges.
func PushSnapshot(addr string, snap []byte) error {
	return protocol.PushSnapshot(addr, snap)
}

// PushSnapshotContext is PushSnapshot with deadline/cancellation
// propagation.
func PushSnapshotContext(ctx context.Context, addr string, snap []byte) error {
	return protocol.PushSnapshotContext(ctx, addr, snap)
}
