package ldphh_test

import (
	"fmt"
	"math/rand/v2"

	"ldphh"
)

// The full protocol round: plant one popular item among 20k users, collect
// one ε-LDP message per user, identify.
func Example() {
	const n = 20000
	dom := ldphh.Domain{ItemBytes: 4}
	ds, err := ldphh.PlantedDataset(dom, n, []float64{0.30}, rand.New(rand.NewPCG(1, 2)))
	if err != nil {
		panic(err)
	}
	hh, err := ldphh.NewHeavyHitters(ldphh.Params{Eps: 4, N: n, ItemBytes: 4, Y: 64, Seed: 7})
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewPCG(3, 4))
	for i, item := range ds.Items {
		rep, err := hh.Report(item, i, rng)
		if err != nil {
			panic(err)
		}
		if err := hh.Absorb(rep); err != nil {
			panic(err)
		}
	}
	est, err := hh.Identify()
	if err != nil {
		panic(err)
	}
	fmt.Println("identified:", len(est) >= 1)
	fmt.Println("heaviest item recovered:", string(est[0].Item) == string(dom.Item(1)))
	// Output:
	// identified: true
	// heaviest item recovered: true
}

// Privacy verification by enumeration: randomized response meets its e^ε
// bound exactly, and a leaky mechanism is caught.
func ExampleMaxPrivacyRatio() {
	rr := ldphh.NewBinaryRR(1.0)
	leaky := ldphh.NewLeakyRR(1.0, 0.01)
	fmt.Printf("rr ratio: %.4f\n", ldphh.MaxPrivacyRatio(rr))
	fmt.Printf("leaky pure: %v\n", ldphh.MaxPrivacyRatio(leaky))
	// Output:
	// rr ratio: 2.7183
	// leaky pure: +Inf
}

// Theorem 4.2: advanced grouposition beats central-model group privacy for
// large groups.
func ExampleAdvancedGroupEpsilon() {
	adv := ldphh.AdvancedGroupEpsilon(0.1, 10000, 1e-6)
	central := ldphh.CentralGroupEpsilon(0.1, 10000)
	fmt.Println("advanced < central:", adv < central)
	// Output:
	// advanced < central: true
}
